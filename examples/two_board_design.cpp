// Two rigid boards, partitioning, compaction, and interchange: the
// remaining tool features in one walkthrough.
//
//   1. Load the 29-device circuit with a second board (control electronics
//      pinned there, per the paper: "1 or 2 rigid connected boards").
//   2. Automatic flow: rotation -> FM partitioning -> sequential placement.
//   3. Volume minimization on each board.
//   4. Save the design + layout through the ASCII interface and export the
//      buck converter's equivalent circuit as a SPICE deck.
//
// Build & run:  ./build/examples/two_board_design
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/flow/buck_converter.hpp"
#include "src/flow/demo_board.hpp"
#include "src/io/design_format.hpp"
#include "src/io/spice.hpp"
#include "src/place/compactor.hpp"
#include "src/place/drc.hpp"
#include "src/place/metrics.hpp"
#include "src/place/placer.hpp"

int main() {
  using namespace emi;

  // --- 1/2: place across two boards -----------------------------------------
  place::Design board = flow::make_demo_board_two_boards();
  place::Layout layout = flow::demo_board_initial_layout(board);
  const place::PlaceStats stats = place::auto_place(board, layout);
  std::printf("two-board placement: %zu placed, %zu failed, %zu cut nets, %.1f ms\n",
              stats.placed, stats.failed, stats.cut_nets,
              stats.elapsed_seconds * 1e3);
  std::printf("board assignment:");
  for (std::size_t i = 0; i < board.components().size(); ++i) {
    if (layout.placements[i].board == 1) {
      std::printf(" %s", board.components()[i].name.c_str());
    }
  }
  std::printf(" -> board 1 (control side)\n");

  const place::DrcReport rep = place::DrcEngine(board).check(layout);
  std::printf("DRC: %s (%zu violations)\n", rep.clean() ? "CLEAN" : "VIOLATED",
              rep.violations.size());

  // --- 3: compact ------------------------------------------------------------
  const place::CompactionResult comp = place::compact_layout(board, layout);
  std::printf("compaction: area %.0f -> %.0f mm^2 (%.0f%% saved), still %s\n",
              comp.area_before_mm2, comp.area_after_mm2, comp.reduction() * 100.0,
              place::DrcEngine(board).check(layout).clean() ? "CLEAN" : "VIOLATED");

  // --- 4: interchange --------------------------------------------------------
  std::stringstream design_file;
  io::save_design(design_file, board, &layout);
  const io::LoadedDesign reloaded = io::load_design(design_file);
  std::printf("ASCII round trip: %zu components, %zu rules, %zu areas reloaded\n",
              reloaded.design.components().size(),
              reloaded.design.emd_rules().size(), reloaded.design.areas().size());

  const flow::BuckConverter bc = flow::make_buck_converter();
  std::stringstream spice;
  io::write_spice_netlist(spice, bc.circuit, {"buck converter EMI model",
                                              true, 150e3, 108e6, 40});
  const std::string deck = spice.str();
  std::printf("SPICE export: %zu lines (buck converter equivalent circuit)\n",
              static_cast<std::size_t>(std::count(deck.begin(), deck.end(), '\n')));

  return rep.clean() && stats.failed == 0 ? 0 : 1;
}
