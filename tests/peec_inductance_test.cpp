#include "src/peec/partial_inductance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emi::peec {
namespace {

// Rosa: a 100 mm straight round wire of 0.5 mm radius has
// L = mu0*l/(2pi) * (ln(2l/r) - 0.75) = 104.8 nH -- the ~1 nH/mm rule.
TEST(SelfInductance, WireMatchesRosaFormula) {
  const double l = self_inductance_wire(100.0, 0.5);
  const double expected = 2e-7 * 0.1 * (std::log(2.0 * 100.0 / 0.5) - 0.75);
  EXPECT_NEAR(l, expected, 1e-15);
  EXPECT_NEAR(l * 1e9, 104.8, 0.5);
}

TEST(SelfInductance, GrowsSuperlinearlyWithLength) {
  const double l1 = self_inductance_wire(50.0, 0.5);
  const double l2 = self_inductance_wire(100.0, 0.5);
  EXPECT_GT(l2, 2.0 * l1);  // ln term adds to the linear growth
}

TEST(SelfInductance, ShrinksWithRadius) {
  EXPECT_GT(self_inductance_wire(100.0, 0.2), self_inductance_wire(100.0, 1.0));
}

TEST(SelfInductance, DegenerateStubbyWireClampsToZero) {
  EXPECT_DOUBLE_EQ(self_inductance_wire(1.0, 0.6), 0.0);
  EXPECT_THROW(self_inductance_wire(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(self_inductance_wire(10.0, 0.0), std::invalid_argument);
}

TEST(SelfInductance, StubbyWireBoundaryIsExactlyDiameter) {
  // The clamp criterion is l <= 2r (shorter than its own diameter): zero at
  // and below the boundary, the positive closed form just above it.
  EXPECT_DOUBLE_EQ(self_inductance_wire(1.0, 0.5), 0.0);     // l == 2r
  EXPECT_DOUBLE_EQ(self_inductance_wire(0.999, 0.5), 0.0);   // l < 2r
  const double just_above = self_inductance_wire(1.0 + 1e-9, 0.5);
  EXPECT_GT(just_above, 0.0);
  const double expected = 2e-7 * (1.0 + 1e-9) * 1e-3 *
                          (std::log(2.0 * (1.0 + 1e-9) / 0.5) - 0.75);
  EXPECT_NEAR(just_above, expected, std::fabs(expected) * 1e-12);
}

// Ruehli bar formula: 10 mm x 1 mm x 0.035 mm PCB trace ~ 8.1 nH.
TEST(SelfInductance, BarMatchesRuehliFormula) {
  const double l = self_inductance_bar(10.0, 1.0, 0.035);
  const double wt = 1.035e-3;
  const double ll = 10e-3;
  const double expected =
      2e-7 * ll * (std::log(2.0 * ll / wt) + 0.5 + 0.2235 * wt / ll);
  EXPECT_NEAR(l, expected, 1e-15);
  EXPECT_GT(l * 1e9, 5.0);
  EXPECT_LT(l * 1e9, 12.0);
}

// Grover's closed form for equal parallel filaments.
TEST(MutualParallel, KnownValue) {
  // l = 100 mm, d = 10 mm: M = 2e-7*0.1*(ln(10+sqrt(101)) - sqrt(1.01) + 0.1)
  const double m = mutual_parallel_filaments(100.0, 10.0);
  const double u = 10.0;
  const double expected =
      2e-7 * 0.1 *
      (std::log(u + std::sqrt(1 + u * u)) - std::sqrt(1 + 1 / (u * u)) + 1 / u);
  EXPECT_NEAR(m, expected, 1e-18);
}

TEST(MutualParallel, DecreasesWithDistance) {
  double prev = mutual_parallel_filaments(50.0, 1.0);
  for (double d : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double m = mutual_parallel_filaments(50.0, d);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

// The Neumann quadrature must agree with the closed form for the geometry
// the closed form covers: equal, parallel, directly facing filaments.
class NeumannVsGrover : public ::testing::TestWithParam<double> {};

TEST_P(NeumannVsGrover, Agree) {
  const double d = GetParam();
  const double len = 50.0;
  const Segment s1{{0, 0, 0}, {len, 0, 0}, 0.1};
  const Segment s2{{0, d, 0}, {len, d, 0}, 0.1};
  const double analytic = mutual_parallel_filaments(len, d);
  const double numeric = mutual_neumann(s1, s2, {6, 4});
  EXPECT_NEAR(numeric / analytic, 1.0, 0.02) << "d = " << d;
}

INSTANTIATE_TEST_SUITE_P(Distances, NeumannVsGrover,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 40.0));

TEST(Neumann, PerpendicularSegmentsDoNotCouple) {
  const Segment s1{{0, 0, 0}, {10, 0, 0}, 0.1};
  const Segment s2{{5, 5, 0}, {5, 15, 0}, 0.1};
  EXPECT_DOUBLE_EQ(mutual_neumann(s1, s2), 0.0);
}

TEST(Neumann, Reciprocity) {
  const Segment s1{{0, 0, 0}, {20, 0, 0}, 0.2};
  const Segment s2{{3, 7, 2}, {25, 9, 5}, 0.3};
  EXPECT_NEAR(mutual_neumann(s1, s2), mutual_neumann(s2, s1), 1e-18);
}

TEST(Neumann, AntiparallelIsNegative) {
  const Segment s1{{0, 0, 0}, {20, 0, 0}, 0.2};
  const Segment s2{{20, 5, 0}, {0, 5, 0}, 0.2};
  EXPECT_LT(mutual_neumann(s1, s2), 0.0);
}

TEST(Neumann, ZeroLengthSegment) {
  const Segment s1{{0, 0, 0}, {0, 0, 0}, 0.2};
  const Segment s2{{0, 5, 0}, {10, 5, 0}, 0.2};
  EXPECT_DOUBLE_EQ(mutual_neumann(s1, s2), 0.0);
}

// Loop inductance of a rectangular loop: the classic two-wire result.
// For a w x h loop the double sum over 4 sides with signs must be positive
// and smaller than the sum of the partial self terms.
TEST(PathInductance, RectangularLoopBounds) {
  SegmentPath loop;
  const double w = 50.0, h = 20.0, r = 0.5;
  loop.segments = {
      {{0, 0, 0}, {w, 0, 0}, r},
      {{w, 0, 0}, {w, h, 0}, r},
      {{w, h, 0}, {0, h, 0}, r},
      {{0, h, 0}, {0, 0, 0}, r},
  };
  const double l = path_inductance(loop);
  double self_sum = 0.0;
  for (const auto& s : loop.segments) self_sum += self_inductance(s);
  EXPECT_GT(l, 0.0);
  EXPECT_LT(l, self_sum);  // opposing sides subtract flux
  // Ballpark: a 50 x 20 mm loop of 0.5 mm wire is on the order of 100 nH.
  EXPECT_GT(l * 1e9, 50.0);
  EXPECT_LT(l * 1e9, 200.0);
}

TEST(PathInductance, WeightActsAsTurns) {
  SegmentPath one;
  one.segments = {{{0, 0, 0}, {30, 0, 0}, 0.4, 1.0}};
  SegmentPath two = one;
  two.segments[0].weight = 2.0;
  // N turns modelled as weight scale L by N^2.
  EXPECT_NEAR(path_inductance(two) / path_inductance(one), 4.0, 1e-9);
}

TEST(PathMutual, ReciprocityAndScaling) {
  SegmentPath a, b;
  a.segments = {{{0, 0, 0}, {30, 0, 0}, 0.4}};
  b.segments = {{{0, 8, 0}, {30, 8, 0}, 0.4}};
  EXPECT_NEAR(path_mutual(a, b), path_mutual(b, a), 1e-18);
  SegmentPath b2 = b;
  b2.segments[0].weight = 3.0;
  EXPECT_NEAR(path_mutual(a, b2) / path_mutual(a, b), 3.0, 1e-9);
}

// Quadrature convergence: higher order / finer subdivision changes the
// answer by less and less (the ablation bench quantifies this).
TEST(Quadrature, ConvergesWithOrder) {
  const Segment s1{{0, 0, 0}, {40, 0, 0}, 0.3};
  const Segment s2{{10, 6, 3}, {50, 8, 3}, 0.3};
  const double coarse = mutual_neumann(s1, s2, {2, 1});
  const double mid = mutual_neumann(s1, s2, {4, 2});
  const double fine = mutual_neumann(s1, s2, {8, 4});
  EXPECT_LT(std::fabs(fine - mid), std::fabs(fine - coarse) + 1e-21);
  EXPECT_NEAR(mid / fine, 1.0, 0.01);
}

}  // namespace
}  // namespace emi::peec
