// The serve protocol layer: handle_command as a pure function of (service
// state, line) - every verb, every malformed-field rejection, the deferred
// RESULT contract - plus one end-to-end pass over a real Unix socket
// (connect, SUBMIT, blocking RESULT, STATS, SHUTDOWN) driving the poll loop.
#include "src/svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/svc/service.hpp"

namespace emi::svc {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(HandleCommand, PingAndUnknownVerbs) {
  Service svc({fresh_dir("srv_ping"), 1, 8});
  EXPECT_EQ(handle_command(svc, "PING").reply, "OK pong");
  EXPECT_EQ(handle_command(svc, "  PING  ").reply, "OK pong");

  const CommandOutcome bad = handle_command(svc, "FROBNICATE x=1");
  EXPECT_EQ(bad.reply.rfind("ERR code=invalid_argument", 0), 0u) << bad.reply;
  EXPECT_EQ(handle_command(svc, "").reply.rfind("ERR code=invalid_argument", 0),
            0u);
}

TEST(HandleCommand, SubmitStatusLifecycle) {
  Service svc({fresh_dir("srv_lifecycle"), 1, 8});
  const CommandOutcome sub =
      handle_command(svc, "SUBMIT topology=buck points=30 client=alice");
  ASSERT_EQ(sub.reply, "OK id=1");

  (void)svc.wait(1);
  const CommandOutcome st = handle_command(svc, "STATUS job=1");
  EXPECT_EQ(st.reply.rfind("OK id=1 state=done complete=1 fingerprint=", 0), 0u)
      << st.reply;
  EXPECT_NE(st.reply.find(" topology=buck"), std::string::npos);
  EXPECT_NE(st.reply.find(" client=alice"), std::string::npos);

  // RESULT on a terminal job answers immediately, identically to STATUS.
  const CommandOutcome res = handle_command(svc, "RESULT job=1");
  EXPECT_FALSE(res.deferred);
  EXPECT_EQ(res.reply, st.reply);
}

TEST(HandleCommand, MalformedFieldsAreInvalidArgument) {
  Service svc({fresh_dir("srv_malformed"), 1, 8});
  const char* bad_lines[] = {
      "SUBMIT topology=teapot",          // unknown topology (spec validation)
      "SUBMIT topology=buck points=1",   // out-of-range points
      "SUBMIT topology=buck points=abc", // malformed number
      "SUBMIT topology=buck budget_ms=-5",
      "SUBMIT topology=buck stage_budget_ms=1x",
      "SUBMIT topology=buck stop_after=frobnication",
      "STATUS job=abc",
      "STATUS",
      "CANCEL job=",
  };
  for (const char* line : bad_lines) {
    EXPECT_EQ(handle_command(svc, line).reply.rfind("ERR code=invalid_argument", 0),
              0u)
        << line;
  }
  // Unknown-but-well-formed ids are invalid_argument, too.
  EXPECT_EQ(handle_command(svc, "STATUS job=99").reply.rfind(
                "ERR code=invalid_argument", 0),
            0u);
  EXPECT_EQ(svc.stats().submitted, 0u);
}

TEST(HandleCommand, ResultOnNonTerminalJobDefers) {
  Service svc({fresh_dir("srv_defer"), 1, 8});
  // A crash-simmed job is deterministically non-terminal: the executor
  // halted with disk still saying `running`.
  JobSpec spec;
  spec.sweep_points = 30;
  spec.stop_after_stage = "sensitivity";
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  (void)svc.wait(id.value());  // unblocks on the crash-sim halt

  const CommandOutcome res =
      handle_command(svc, "RESULT job=" + std::to_string(id.value()));
  EXPECT_TRUE(res.deferred);
  EXPECT_EQ(res.wait_job, id.value());
  EXPECT_TRUE(res.reply.empty());
  // STATUS on the same job answers immediately with the live state.
  const CommandOutcome st =
      handle_command(svc, "STATUS job=" + std::to_string(id.value()));
  EXPECT_FALSE(st.deferred);
  EXPECT_NE(st.reply.find("state=running"), std::string::npos);
}

TEST(HandleCommand, CancelStatsShutdown) {
  Service svc({fresh_dir("srv_misc"), 2, 8});
  JobSpec spec;
  spec.sweep_points = 30;
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(handle_command(svc, "CANCEL job=1").reply, "OK id=1 cancelled");
  (void)svc.wait(1);

  const CommandOutcome stats = handle_command(svc, "STATS");
  EXPECT_EQ(stats.reply.rfind("OK submitted=1 recovered=0", 0), 0u)
      << stats.reply;
  EXPECT_NE(stats.reply.find(" cache_self_hits="), std::string::npos);
  EXPECT_NE(stats.reply.find(" cache_mutual_misses="), std::string::npos);

  const CommandOutcome sd = handle_command(svc, "SHUTDOWN");
  EXPECT_EQ(sd.reply, "OK shutting_down");
  EXPECT_TRUE(sd.shutdown);
}

TEST(HandleCommand, HealthAndShutdownDrain) {
  Service svc({fresh_dir("srv_health"), 2, 8});
  const CommandOutcome h = handle_command(svc, "HEALTH");
  EXPECT_EQ(h.reply.rfind("OK queue_depth=0 queue_capacity=8 executors=2", 0), 0u)
      << h.reply;
  for (const char* field :
       {" running=", " stalled=", " stall_events=", " shed=", " quarantined=",
        " ewma_job_ms=", " retry_after_ms=", " draining=0"}) {
    EXPECT_NE(h.reply.find(field), std::string::npos) << field << " missing: "
                                                      << h.reply;
  }

  const CommandOutcome drain = handle_command(svc, "SHUTDOWN DRAIN");
  EXPECT_EQ(drain.reply, "OK draining");
  EXPECT_TRUE(drain.drain);
  EXPECT_FALSE(drain.shutdown);  // the loop exits once in-flight work lands
  EXPECT_TRUE(svc.draining());
  EXPECT_NE(handle_command(svc, "HEALTH").reply.find(" draining=1"),
            std::string::npos);
  // Control plane stays live while draining; new submissions are refused.
  EXPECT_EQ(handle_command(svc, "PING").reply, "OK pong");
  EXPECT_EQ(handle_command(svc, "SUBMIT topology=buck points=30")
                .reply.rfind("ERR code=failed_precondition", 0),
            0u);
}

TEST(HandleCommand, SubmitPoisonField) {
  Service svc({fresh_dir("srv_poison"), 1, 8});
  // Well-formed poison spec is accepted (tests-only crash-loop modeling).
  EXPECT_EQ(handle_command(
                svc, "SUBMIT topology=buck points=30 stop_after=sensitivity poison=1")
                .reply,
            "OK id=1");
  // Malformed values and poison without a crash-sim stage are rejected.
  EXPECT_EQ(handle_command(svc, "SUBMIT topology=buck poison=2")
                .reply.rfind("ERR code=invalid_argument", 0),
            0u);
  EXPECT_EQ(handle_command(svc, "SUBMIT topology=buck poison=1")
                .reply.rfind("ERR code=invalid_argument", 0),
            0u);
}

// --- socket end to end ------------------------------------------------------

class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The server binds lazily; retry briefly until it is listening.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  std::string roundtrip(const std::string& line) {
    if (!send_line(line)) return "<send failed>";
    return recv_line();
  }

  // Split halves of roundtrip, for parking a RESULT without blocking the
  // test thread on the reply.
  bool send_line(const std::string& line) {
    const std::string req = line + "\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const ssize_t n =
          ::send(fd_, req.data() + off, req.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string recv_line() {
    while (buf_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "<closed>";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf_.find('\n');
    std::string reply = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return reply;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

TEST(SocketServer, EndToEndSubmitResultStatsShutdown) {
  const std::string dir = fresh_dir("srv_sock");
  // Keep the socket path short: sockaddr_un caps it around 107 bytes.
  const std::string sock = "/tmp/emiplace_test_" + std::to_string(::getpid()) +
                           ".sock";
  Service svc({dir, 2, 16});
  SocketServer server(svc, sock);
  std::thread serving([&] { EXPECT_TRUE(server.serve().ok()); });

  {
    Client c(sock);
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.roundtrip("PING"), "OK pong");

    const std::string sub = c.roundtrip("SUBMIT topology=buck points=30");
    ASSERT_EQ(sub, "OK id=1");
    // Blocking RESULT: the connection parks on the waiter list until the
    // executor finishes, then gets the terminal record.
    const std::string res = c.roundtrip("RESULT job=1");
    EXPECT_EQ(res.rfind("OK id=1 state=done complete=1", 0), 0u) << res;

    // A second client interleaves on the same poll loop.
    Client c2(sock);
    ASSERT_TRUE(c2.connected());
    EXPECT_EQ(c2.roundtrip("STATUS job=1"), res);
    EXPECT_EQ(c2.roundtrip("CANCEL job=1"), "OK id=1 cancelled");  // no-op ok

    const std::string stats = c.roundtrip("STATS");
    EXPECT_EQ(stats.rfind("OK submitted=1", 0), 0u) << stats;
    EXPECT_NE(stats.find(" done=1"), std::string::npos);

    EXPECT_EQ(c.roundtrip("SHUTDOWN"), "OK shutting_down");
  }
  serving.join();
  // The socket file is unlinked on exit.
  EXPECT_FALSE(std::filesystem::exists(sock));
}

// Overload shed on the wire: with the single executor pinned and the
// capacity-1 queue full, a third SUBMIT comes back as a resource_exhausted
// ERR line whose message carries the machine-readable retry_after_ms token.
TEST(SocketServer, ShedSubmitCarriesRetryAfterToken) {
  const std::string dir = fresh_dir("srv_shed");
  const std::string sock = "/tmp/emiplace_shed_" + std::to_string(::getpid()) +
                           ".sock";
  Service svc({dir, 1, 1});
  SocketServer server(svc, sock);
  std::thread serving([&] { EXPECT_TRUE(server.serve().ok()); });
  {
    Client c(sock);
    ASSERT_TRUE(c.connected());
    ASSERT_EQ(c.roundtrip("SUBMIT topology=buck points=30"), "OK id=1");
    // Wait until the executor owns job 1 so the queue is empty again.
    while (c.roundtrip("STATUS job=1").find("state=queued") != std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(c.roundtrip("SUBMIT topology=buck points=30"), "OK id=2");

    const std::string shed = c.roundtrip("SUBMIT topology=buck points=30");
    EXPECT_EQ(shed.rfind("ERR code=resource_exhausted", 0), 0u) << shed;
    EXPECT_NE(shed.find("queue full"), std::string::npos) << shed;
    EXPECT_NE(shed.find(" retry_after_ms="), std::string::npos) << shed;
    EXPECT_NE(c.roundtrip("HEALTH").find(" shed=1"), std::string::npos);

    EXPECT_EQ(c.roundtrip("SHUTDOWN"), "OK shutting_down");
  }
  serving.join();
}

// Regression (head-of-line blocking): a connection parked on RESULT for a
// never-terminal job must not stall the poll loop - other connections' PING/
// STATS/HEALTH answer promptly - and a SHUTDOWN flushes the parked waiter
// with the job's current (non-terminal) record instead of dropping it.
TEST(SocketServer, ControlPlaneLiveWhileResultParked) {
  const std::string dir = fresh_dir("srv_parked");
  const std::string sock = "/tmp/emiplace_park_" + std::to_string(::getpid()) +
                           ".sock";
  Service svc({dir, 1, 8});
  SocketServer server(svc, sock);
  std::thread serving([&] { EXPECT_TRUE(server.serve().ok()); });
  {
    Client parked(sock);
    ASSERT_TRUE(parked.connected());
    // Crash-sim job: halts with disk saying `running`, so it never reaches a
    // terminal state in this process - the RESULT below parks forever.
    ASSERT_EQ(parked.roundtrip(
                  "SUBMIT topology=buck points=30 stop_after=sensitivity"),
              "OK id=1");
    ASSERT_TRUE(parked.send_line("RESULT job=1"));

    // A second connection gets full service while the first one is parked.
    Client live(sock);
    ASSERT_TRUE(live.connected());
    EXPECT_EQ(live.roundtrip("PING"), "OK pong");
    const std::string stats = live.roundtrip("STATS");
    EXPECT_EQ(stats.rfind("OK submitted=1", 0), 0u) << stats;
    EXPECT_NE(stats.find(" stalled=0"), std::string::npos) << stats;
    EXPECT_EQ(live.roundtrip("HEALTH").rfind("OK queue_depth=", 0), 0u);

    // The crash-sim halt leaves the job's durable state at `running`; wait
    // for the executor to actually reach it so the flushed record below is
    // deterministic (SHUTDOWN could otherwise beat the dequeue and flush a
    // still-queued record).
    while (live.roundtrip("STATUS job=1").find("state=queued") !=
           std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    EXPECT_EQ(live.roundtrip("SHUTDOWN"), "OK shutting_down");
    // The parked waiter is flushed with the live record, not silently cut.
    const std::string flushed = parked.recv_line();
    EXPECT_EQ(flushed.rfind("OK id=1 state=running", 0), 0u) << flushed;
  }
  serving.join();
}

// SHUTDOWN DRAIN over the wire: reply acknowledges, control plane answers
// while the in-flight job lands, and the serve loop exits on its own once
// drain completes - no explicit SHUTDOWN needed.
TEST(SocketServer, DrainExitsLoopOnceIdle) {
  const std::string dir = fresh_dir("srv_drain");
  const std::string sock = "/tmp/emiplace_drain_" + std::to_string(::getpid()) +
                           ".sock";
  std::vector<std::uint64_t> ids;
  {
    Service svc({dir, 1, 16});
    SocketServer server(svc, sock);
    std::thread serving([&] { EXPECT_TRUE(server.serve().ok()); });
    {
      Client c(sock);
      ASSERT_TRUE(c.connected());
      ASSERT_EQ(c.roundtrip("SUBMIT topology=buck points=30"), "OK id=1");
      ASSERT_EQ(c.roundtrip("SUBMIT topology=buck points=30"), "OK id=2");
      // Drain only once job 1 is in flight: with nothing running,
      // drain_complete() is immediately true and the loop would exit
      // under our remaining roundtrips.
      while (c.roundtrip("STATUS job=1").find("state=queued") !=
             std::string::npos) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      EXPECT_EQ(c.roundtrip("SHUTDOWN DRAIN"), "OK draining");
      EXPECT_NE(c.roundtrip("HEALTH").find(" draining=1"), std::string::npos);
      EXPECT_EQ(c.roundtrip("SUBMIT topology=buck points=30")
                    .rfind("ERR code=failed_precondition", 0),
                0u);
    }
    serving.join();  // returns once the in-flight job landed
    EXPECT_TRUE(svc.drain_complete());
    EXPECT_FALSE(std::filesystem::exists(sock));
    ids = {1, 2};
  }
  // Nothing lost: whatever stayed queued under drain recovers and finishes.
  Service restarted({dir, 1, 16});
  for (const std::uint64_t id : ids) {
    const auto rec = restarted.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kDone) << "job " << id;
  }
}

}  // namespace
}  // namespace emi::svc
