// The serve protocol layer: handle_command as a pure function of (service
// state, line) - every verb, every malformed-field rejection, the deferred
// RESULT contract - plus one end-to-end pass over a real Unix socket
// (connect, SUBMIT, blocking RESULT, STATS, SHUTDOWN) driving the poll loop.
#include "src/svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "src/svc/service.hpp"

namespace emi::svc {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(HandleCommand, PingAndUnknownVerbs) {
  Service svc({fresh_dir("srv_ping"), 1, 8});
  EXPECT_EQ(handle_command(svc, "PING").reply, "OK pong");
  EXPECT_EQ(handle_command(svc, "  PING  ").reply, "OK pong");

  const CommandOutcome bad = handle_command(svc, "FROBNICATE x=1");
  EXPECT_EQ(bad.reply.rfind("ERR code=invalid_argument", 0), 0u) << bad.reply;
  EXPECT_EQ(handle_command(svc, "").reply.rfind("ERR code=invalid_argument", 0),
            0u);
}

TEST(HandleCommand, SubmitStatusLifecycle) {
  Service svc({fresh_dir("srv_lifecycle"), 1, 8});
  const CommandOutcome sub =
      handle_command(svc, "SUBMIT topology=buck points=30 client=alice");
  ASSERT_EQ(sub.reply, "OK id=1");

  (void)svc.wait(1);
  const CommandOutcome st = handle_command(svc, "STATUS job=1");
  EXPECT_EQ(st.reply.rfind("OK id=1 state=done complete=1 fingerprint=", 0), 0u)
      << st.reply;
  EXPECT_NE(st.reply.find(" topology=buck"), std::string::npos);
  EXPECT_NE(st.reply.find(" client=alice"), std::string::npos);

  // RESULT on a terminal job answers immediately, identically to STATUS.
  const CommandOutcome res = handle_command(svc, "RESULT job=1");
  EXPECT_FALSE(res.deferred);
  EXPECT_EQ(res.reply, st.reply);
}

TEST(HandleCommand, MalformedFieldsAreInvalidArgument) {
  Service svc({fresh_dir("srv_malformed"), 1, 8});
  const char* bad_lines[] = {
      "SUBMIT topology=teapot",          // unknown topology (spec validation)
      "SUBMIT topology=buck points=1",   // out-of-range points
      "SUBMIT topology=buck points=abc", // malformed number
      "SUBMIT topology=buck budget_ms=-5",
      "SUBMIT topology=buck stage_budget_ms=1x",
      "SUBMIT topology=buck stop_after=frobnication",
      "STATUS job=abc",
      "STATUS",
      "CANCEL job=",
  };
  for (const char* line : bad_lines) {
    EXPECT_EQ(handle_command(svc, line).reply.rfind("ERR code=invalid_argument", 0),
              0u)
        << line;
  }
  // Unknown-but-well-formed ids are invalid_argument, too.
  EXPECT_EQ(handle_command(svc, "STATUS job=99").reply.rfind(
                "ERR code=invalid_argument", 0),
            0u);
  EXPECT_EQ(svc.stats().submitted, 0u);
}

TEST(HandleCommand, ResultOnNonTerminalJobDefers) {
  Service svc({fresh_dir("srv_defer"), 1, 8});
  // A crash-simmed job is deterministically non-terminal: the executor
  // halted with disk still saying `running`.
  JobSpec spec;
  spec.sweep_points = 30;
  spec.stop_after_stage = "sensitivity";
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  (void)svc.wait(id.value());  // unblocks on the crash-sim halt

  const CommandOutcome res =
      handle_command(svc, "RESULT job=" + std::to_string(id.value()));
  EXPECT_TRUE(res.deferred);
  EXPECT_EQ(res.wait_job, id.value());
  EXPECT_TRUE(res.reply.empty());
  // STATUS on the same job answers immediately with the live state.
  const CommandOutcome st =
      handle_command(svc, "STATUS job=" + std::to_string(id.value()));
  EXPECT_FALSE(st.deferred);
  EXPECT_NE(st.reply.find("state=running"), std::string::npos);
}

TEST(HandleCommand, CancelStatsShutdown) {
  Service svc({fresh_dir("srv_misc"), 2, 8});
  JobSpec spec;
  spec.sweep_points = 30;
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(handle_command(svc, "CANCEL job=1").reply, "OK id=1 cancelled");
  (void)svc.wait(1);

  const CommandOutcome stats = handle_command(svc, "STATS");
  EXPECT_EQ(stats.reply.rfind("OK submitted=1 recovered=0", 0), 0u)
      << stats.reply;
  EXPECT_NE(stats.reply.find(" cache_self_hits="), std::string::npos);
  EXPECT_NE(stats.reply.find(" cache_mutual_misses="), std::string::npos);

  const CommandOutcome sd = handle_command(svc, "SHUTDOWN");
  EXPECT_EQ(sd.reply, "OK shutting_down");
  EXPECT_TRUE(sd.shutdown);
}

// --- socket end to end ------------------------------------------------------

class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The server binds lazily; retry briefly until it is listening.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  std::string roundtrip(const std::string& line) {
    const std::string req = line + "\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const ssize_t n = ::send(fd_, req.data() + off, req.size() - off, 0);
      if (n <= 0) return "<send failed>";
      off += static_cast<std::size_t>(n);
    }
    while (buf_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "<closed>";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf_.find('\n');
    std::string reply = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return reply;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

TEST(SocketServer, EndToEndSubmitResultStatsShutdown) {
  const std::string dir = fresh_dir("srv_sock");
  // Keep the socket path short: sockaddr_un caps it around 107 bytes.
  const std::string sock = "/tmp/emiplace_test_" + std::to_string(::getpid()) +
                           ".sock";
  Service svc({dir, 2, 16});
  SocketServer server(svc, sock);
  std::thread serving([&] { EXPECT_TRUE(server.serve().ok()); });

  {
    Client c(sock);
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.roundtrip("PING"), "OK pong");

    const std::string sub = c.roundtrip("SUBMIT topology=buck points=30");
    ASSERT_EQ(sub, "OK id=1");
    // Blocking RESULT: the connection parks on the waiter list until the
    // executor finishes, then gets the terminal record.
    const std::string res = c.roundtrip("RESULT job=1");
    EXPECT_EQ(res.rfind("OK id=1 state=done complete=1", 0), 0u) << res;

    // A second client interleaves on the same poll loop.
    Client c2(sock);
    ASSERT_TRUE(c2.connected());
    EXPECT_EQ(c2.roundtrip("STATUS job=1"), res);
    EXPECT_EQ(c2.roundtrip("CANCEL job=1"), "OK id=1 cancelled");  // no-op ok

    const std::string stats = c.roundtrip("STATS");
    EXPECT_EQ(stats.rfind("OK submitted=1", 0), 0u) << stats;
    EXPECT_NE(stats.find(" done=1"), std::string::npos);

    EXPECT_EQ(c.roundtrip("SHUTDOWN"), "OK shutting_down");
  }
  serving.join();
  // The socket file is unlinked on exit.
  EXPECT_FALSE(std::filesystem::exists(sock));
}

}  // namespace
}  // namespace emi::svc
