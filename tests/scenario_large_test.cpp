// Smoke battery for the large-scale scenario generator (scenario_large.hpp)
// under `ctest -L large`: determinism (seeded fingerprint and stage-prefix
// stability), DRC-clean-by-construction output, the segment-count floor the
// scaling benchmark relies on, and a capped-N end-to-end run of the
// extraction pipeline - exact vs clustered matrix, error bound, counters
// and the geometric prescreen - over the generated grid.
#include "src/flow/scenario_large.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/emi/sensitivity.hpp"
#include "src/peec/cluster_tree.hpp"
#include "src/place/drc.hpp"

namespace emi::flow {
namespace {

LargeScenarioOptions opts(std::size_t stages, std::uint64_t seed = 1) {
  LargeScenarioOptions o;
  o.n_stages = stages;
  o.seed = seed;
  return o;
}

peec::KernelOptions clustered(double theta) {
  peec::KernelOptions k;
  k.cluster = true;
  k.cluster_theta = theta;
  return k;
}

TEST(ScenarioLarge, FingerprintIsDeterministicPerSeed) {
  const LargeScenario a = make_large_scenario(opts(8, 7));
  const LargeScenario b = make_large_scenario(opts(8, 7));
  const LargeScenario c = make_large_scenario(opts(8, 8));
  EXPECT_EQ(layout_fingerprint(a), layout_fingerprint(b));
  EXPECT_NE(layout_fingerprint(a), layout_fingerprint(c));
}

TEST(ScenarioLarge, StagesArePrefixStable) {
  // Per-stage RNG streams are independent, so a capped-N scenario is a
  // prefix of the larger one - the property that lets the scaling bench
  // compare the same geometry at different N.
  const LargeScenario small = make_large_scenario(opts(4));
  const LargeScenario big = make_large_scenario(opts(16));
  ASSERT_LE(small.models.size(), big.models.size());
  for (std::size_t i = 0; i < small.models.size(); ++i) {
    EXPECT_EQ(peec::model_digest(small.models[i]),
              peec::model_digest(big.models[i]))
        << "model " << i;
    // Stage grids differ in column count, so compare poses only within the
    // shared first row.
    if (i < 2 * 2) {
      EXPECT_EQ(small.placed[i].pose.position.x, big.placed[i].pose.position.x);
    }
  }
}

TEST(ScenarioLarge, OutputIsDrcClean) {
  const LargeScenario s = make_large_scenario(opts(9));
  ASSERT_EQ(s.layout.placements.size(), s.board.components().size());
  for (const place::Placement& p : s.layout.placements) {
    EXPECT_TRUE(p.placed);
  }
  const place::DrcReport report = place::DrcEngine(s.board).check(s.layout);
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations";
}

TEST(ScenarioLarge, SixteenStagesClearTheThousandSegmentFloor) {
  const LargeScenario s = make_large_scenario(opts(16));
  EXPECT_GE(s.total_segments(), 1000u);
  EXPECT_EQ(s.models.size(), 32u);
  EXPECT_EQ(s.placed.size(), 32u);
  EXPECT_EQ(s.names.size(), 32u);
}

TEST(ScenarioLarge, RejectsDrcUnsafeOptions) {
  LargeScenarioOptions bad;
  bad.n_stages = 0;
  EXPECT_THROW(make_large_scenario(bad), std::invalid_argument);
  bad = LargeScenarioOptions{};
  bad.jitter = bad.pitch;  // far past the DRC margin
  EXPECT_THROW(make_large_scenario(bad), std::invalid_argument);
}

TEST(ScenarioLarge, CappedEndToEndExactVsClustered) {
  // Six stages (~390 segments): full clustered matrix extraction over the
  // grid, compared entry-by-entry against the exact matrix within the
  // per-pair documented bound, with cluster counters actually engaged, plus
  // the geometric prescreen running on the clustered extractor.
  const LargeScenario s = make_large_scenario(opts(6));
  const peec::QuadratureOptions quad{4, 2};
  const peec::CouplingExtractor exact(quad);
  const peec::CouplingExtractor clus(quad, clustered(4.0));

  const peec::KernelStats before = peec::kernel_stats();
  const std::vector<units::Henry> m_exact = exact.mutual_matrix(s.placed);
  const std::vector<units::Henry> m_clus =
      clus.mutual_matrix_clustered(s.placed);
  const peec::KernelStats after = peec::kernel_stats();
  EXPECT_GT(after.cluster_pairs, before.cluster_pairs);
  EXPECT_GT(after.cluster_skipped, before.cluster_skipped);

  const std::size_t n = s.placed.size();
  ASSERT_EQ(m_exact.size(), n * n);
  ASSERT_EQ(m_clus.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    // Self terms never cluster.
    EXPECT_EQ(m_exact[i * n + i].raw(), m_clus[i * n + i].raw());
    for (std::size_t j = i + 1; j < n; ++j) {
      // Symmetry survives clustering (canonicalization computes one key).
      EXPECT_EQ(m_clus[i * n + j].raw(), m_clus[j * n + i].raw());
      // The matrix entry carries the models' stray scaling; the air-side
      // error bound for this pair comes from the stats entry point.
      const peec::ClusteredMutual cm = peec::path_mutual_clustered_stats(
          s.placed[i].model->path_at(s.placed[i].pose),
          s.placed[j].model->path_at(s.placed[j].pose), quad, clustered(4.0));
      const double stray = s.placed[i].model->stray_scale *
                           s.placed[j].model->stray_scale;
      EXPECT_LE(std::fabs(m_clus[i * n + j].raw() - m_exact[i * n + j].raw()),
                stray * cm.error_bound + 1e-18)
          << "pair " << i << "," << j;
    }
  }

  // The prescreen (the flow's batched probe call site) runs on the
  // clustered extractor and ranks every pair.
  const std::vector<emc::GeometricCoupling> ranked =
      emc::rank_geometric_coupling(clus, s.placed, s.names);
  EXPECT_EQ(ranked.size(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace emi::flow
