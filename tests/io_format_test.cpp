#include "src/io/design_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/io/reports.hpp"
#include "src/place/drc.hpp"
#include "src/place/metrics.hpp"

using emi::units::Millimeters;

namespace emi::io {
namespace {

constexpr const char* kSample = R"(# sample design
boards 2
clearance 0.8
component CX1 26 10 12 axis=90 group=filter rot=0,90,180,270 prefrot=90
component LF 14 16 14 axis=90 group=filter areas=main prefareas=main
component CONN 18 8 10
pin CX1 1 -11.25 0
pin CX1 2 11.25 0
net N1 maxlen=80 CX1.1 LF
net N2 CX1.2 CONN
area main 0 0 0 100 0 100 60 0 60
area aux 1 0 0 50 0 50 40 0 40
keepout heatsink 0 70 10 95 40 0 1e9
keepout rib 0 0 50 100 60 8 1e9
pemd CX1 LF 21.5
place CONN 10 6 0 0
)";

TEST(DesignFormat, ParsesEverything) {
  std::istringstream in(kSample);
  const LoadedDesign ld = load_design(in);
  const place::Design& d = ld.design;
  EXPECT_EQ(d.board_count(), 2);
  EXPECT_DOUBLE_EQ(d.clearance().raw(), 0.8);
  ASSERT_EQ(d.components().size(), 3u);
  const place::Component& cx1 = d.components()[d.component_index("CX1")];
  EXPECT_DOUBLE_EQ(cx1.width_mm, 26.0);
  EXPECT_EQ(cx1.group, "filter");
  ASSERT_EQ(cx1.pins.size(), 2u);
  EXPECT_DOUBLE_EQ(cx1.pins[0].offset.x, -11.25);
  ASSERT_EQ(cx1.preferred_rotations.size(), 1u);
  EXPECT_DOUBLE_EQ(cx1.preferred_rotations[0], 90.0);
  const place::Component& lf = d.components()[d.component_index("LF")];
  ASSERT_EQ(lf.allowed_areas.size(), 1u);
  EXPECT_EQ(lf.allowed_areas[0], "main");
  ASSERT_EQ(d.nets().size(), 2u);
  EXPECT_DOUBLE_EQ(d.nets()[0].max_length_mm, 80.0);
  EXPECT_EQ(d.nets()[0].pins[0].pin, "1");
  EXPECT_EQ(d.nets()[1].pins[1].pin, "");
  ASSERT_EQ(d.areas().size(), 2u);
  EXPECT_EQ(d.areas()[1].board, 1);
  ASSERT_EQ(d.keepouts().size(), 2u);
  EXPECT_DOUBLE_EQ(d.keepouts()[1].volume.z_lo, 8.0);
  ASSERT_EQ(d.emd_rules().size(), 1u);
  EXPECT_DOUBLE_EQ(d.emd_rules()[0].pemd.raw(), 21.5);
  // Preplacement applied.
  const std::size_t conn = d.component_index("CONN");
  EXPECT_TRUE(ld.layout.placements[conn].placed);
  EXPECT_TRUE(d.components()[conn].preplaced);
  EXPECT_EQ(ld.layout.placements[conn].position, (geom::Vec2{10, 6}));
}

TEST(DesignFormat, RoundTripPreservesStructure) {
  std::istringstream in(kSample);
  const LoadedDesign ld = load_design(in);
  std::stringstream buf;
  save_design(buf, ld.design, &ld.layout);
  const LoadedDesign ld2 = load_design(buf);
  EXPECT_EQ(ld2.design.components().size(), ld.design.components().size());
  EXPECT_EQ(ld2.design.nets().size(), ld.design.nets().size());
  EXPECT_EQ(ld2.design.areas().size(), ld.design.areas().size());
  EXPECT_EQ(ld2.design.keepouts().size(), ld.design.keepouts().size());
  EXPECT_EQ(ld2.design.emd_rules().size(), ld.design.emd_rules().size());
  EXPECT_DOUBLE_EQ(ld2.design.clearance().raw(), ld.design.clearance().raw());
  EXPECT_EQ(ld2.design.board_count(), ld.design.board_count());
  for (std::size_t i = 0; i < ld.layout.placements.size(); ++i) {
    EXPECT_EQ(ld2.layout.placements[i].placed, ld.layout.placements[i].placed);
    if (ld.layout.placements[i].placed) {
      EXPECT_EQ(ld2.layout.placements[i].position, ld.layout.placements[i].position);
    }
  }
}

TEST(DesignFormat, ErrorsCarryLineNumbers) {
  const auto expect_error_line = [](const std::string& text, std::size_t line) {
    std::istringstream in(text);
    try {
      load_design(in);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line_no, line);
    }
  };
  expect_error_line("component A 1 1 1\nbogus_keyword x\n", 2);
  expect_error_line("component A 1 1\n", 1);                    // missing field
  expect_error_line("component A 1 1 1 wat\n", 1);              // not key=value
  expect_error_line("component A 1 1 1 board=x\n", 1);          // bad int
  expect_error_line("pemd A B 5\n", 1);                         // unknown comp
  expect_error_line("area a 0 0 0 1 1\n", 1);                   // too few points
  expect_error_line("pin A p 0 0\n", 1);                        // unknown comp
  expect_error_line("place A 0 0 0 0\n", 1);                    // unknown comp
  expect_error_line("component A 1 1 1\nnet n A.1 A\nnet\n", 3);
}

TEST(DesignFormat, LayoutOnlyRoundTrip) {
  std::istringstream in(kSample);
  const LoadedDesign ld = load_design(in);
  place::Layout l = place::Layout::unplaced(ld.design);
  l.placements[0] = {{12.5, 30.0}, 90.0, 0, true};
  l.placements[2] = {{80.0, 20.0}, 180.0, 1, true};
  std::stringstream buf;
  save_layout(buf, ld.design, l);
  const place::Layout l2 = load_layout(buf, ld.design);
  EXPECT_EQ(l2.placements[0].position, (geom::Vec2{12.5, 30.0}));
  EXPECT_DOUBLE_EQ(l2.placements[0].rot_deg, 90.0);
  EXPECT_FALSE(l2.placements[1].placed);
  EXPECT_EQ(l2.placements[2].board, 1);
}

TEST(DesignFormat, CommentsAndBlanksIgnored) {
  std::istringstream in("\n# full line comment\n  \ncomponent A 1 1 1 # trailing\n");
  const LoadedDesign ld = load_design(in);
  EXPECT_EQ(ld.design.components().size(), 1u);
}

TEST(DesignFormat, MissingFileThrows) {
  EXPECT_THROW(load_design_file("/nonexistent/path.design"), std::runtime_error);
}

TEST(Reports, DrcReportMentionsStatus) {
  place::Design d;
  d.add_area({"b", 0, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {50, 50}))});
  place::Component c;
  c.name = "A";
  d.add_component(c);
  c.name = "B";
  d.add_component(c);
  d.add_emd_rule("A", "B", Millimeters{30.0});
  place::Layout l = place::Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  l.placements[1] = {{20, 10}, 0.0, 0, true};
  const place::DrcReport r = place::DrcEngine(d).check(l);
  std::stringstream out;
  write_drc_report(out, r);
  const std::string text = out.str();
  EXPECT_NE(text.find("VIOLATIONS"), std::string::npos);
  EXPECT_NE(text.find("[RED]"), std::string::npos);
  EXPECT_NE(text.find("EMD"), std::string::npos);
}

TEST(Reports, SpectrumCsvHasLimitColumn) {
  emc::EmissionSpectrum spec;
  spec.freqs_hz = {0.2e6, 3e6};
  spec.level_dbuv = {55.0, 60.0};
  std::stringstream out;
  write_spectrum_csv(out, spec, 3);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "freq_hz,level_dbuv,limit_dbuv");
  std::getline(out, line);
  EXPECT_EQ(line, "200000,55,94");  // LW class 3 = 110 - 16
  std::getline(out, line);
  EXPECT_EQ(line, "3e+06,60,");  // out of band: empty limit cell
}

TEST(Reports, LayoutTableListsAll) {
  place::Design d;
  d.add_area({"b", 0, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {50, 50}))});
  place::Component c;
  c.name = "A";
  d.add_component(c);
  place::Layout l = place::Layout::unplaced(d);
  std::stringstream out;
  write_layout_table(out, d, l);
  EXPECT_NE(out.str().find("A,0,0,0,0,0"), std::string::npos);
}

}  // namespace
}  // namespace emi::io
