#include <gtest/gtest.h>

#include <cmath>

#include "src/emi/cispr25.hpp"
#include "src/emi/measurement.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/demo_board.hpp"
#include "src/flow/design_flow.hpp"
#include "src/numeric/stats.hpp"
#include "src/place/drc.hpp"
#include "src/place/placer.hpp"

namespace emi::flow {
namespace {

TEST(BuckConverter, ModelInventoryConsistent) {
  const BuckConverter bc = make_buck_converter();
  EXPECT_EQ(bc.models.size(), 7u);
  EXPECT_EQ(bc.inductor_model.size(), 7u);
  EXPECT_EQ(bc.board.components().size(), 7u);
  // Every mapped inductor exists in the circuit and every model has a board
  // component of the same name.
  for (const auto& [lname, mi] : bc.inductor_model) {
    EXPECT_NO_THROW(bc.circuit.inductor_index(lname));
    EXPECT_TRUE(bc.board.find_component(bc.models[mi].name).has_value());
  }
  EXPECT_NE(bc.model_for_inductor("L_CX1"), nullptr);
  EXPECT_EQ(bc.model_for_inductor("L_LISN"), nullptr);  // LISN is not placed
  EXPECT_NE(bc.model_for_component("LBUCK"), nullptr);
  EXPECT_EQ(bc.model_for_component("nope"), nullptr);
  EXPECT_EQ(bc.inductor_component_pairs().size(), 7u);
}

TEST(BuckConverter, ReferenceLayoutsAreGeometricallyLegal) {
  const BuckConverter bc = make_buck_converter();
  for (const place::Layout& l : {layout_unfavorable(bc), layout_optimized(bc)}) {
    const place::DrcReport r = place::DrcEngine(bc.board).check(l);
    // No geometric violations; EMD rules are not yet installed here.
    EXPECT_EQ(r.count(place::ViolationKind::kOverlap), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kClearance), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kOutsideArea), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kUnplaced), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kGroupSplit), 0u);
  }
}

TEST(BuckConverter, UnfavorableLayoutCouplesHarder) {
  const BuckConverter bc = make_buck_converter();
  const peec::CouplingExtractor ex;
  const auto k_of = [&](const place::Layout& l, const char* a, const char* b) {
    const peec::PlacedModel pa{bc.model_for_component(a), pose_of(bc, l, a)};
    const peec::PlacedModel pb{bc.model_for_component(b), pose_of(bc, l, b)};
    return std::fabs(ex.coupling_factor(pa, pb));
  };
  const place::Layout bad = layout_unfavorable(bc);
  const place::Layout good = layout_optimized(bc);
  // The critical X-cap pair: strong in the bad layout, below the rule
  // threshold (and several times weaker) in the optimized one.
  const double k_bad = k_of(bad, "CX1", "CX2");
  const double k_good = k_of(good, "CX1", "CX2");
  EXPECT_GT(k_bad, 0.02);
  EXPECT_LT(k_good, 0.01);
  EXPECT_GT(k_bad / k_good, 4.0);
}

TEST(BuckConverter, CircuitWithCouplingsInstallsK) {
  const BuckConverter bc = make_buck_converter();
  const peec::CouplingExtractor ex;
  const ckt::Circuit c = circuit_with_couplings(bc, layout_unfavorable(bc), ex, 1e-3);
  EXPECT_GT(c.couplings().size(), 0u);
  EXPECT_EQ(bc.circuit.couplings().size(), 0u);  // original untouched
  for (const auto& k : c.couplings()) EXPECT_LT(std::fabs(k.k), 1.0);
  // Restricting to one pair yields at most one coupling.
  const ckt::Circuit c1 = circuit_with_couplings(bc, layout_unfavorable(bc), ex, 1e-6,
                                                 {{"L_CX1", "L_CX2"}});
  EXPECT_LE(c1.couplings().size(), 1u);
  EXPECT_THROW(circuit_with_couplings(bc, layout_unfavorable(bc), ex, 1e-6,
                                      {{"L_LISN", "L_CX2"}}),
               std::invalid_argument);
}

TEST(BuckConverter, PoseOfUnplacedThrows) {
  const BuckConverter bc = make_buck_converter();
  const place::Layout empty = place::Layout::unplaced(bc.board);
  EXPECT_THROW(pose_of(bc, empty, "CX1"), std::invalid_argument);
}

TEST(DemoBoard, MatchesPaperScale) {
  const place::Design d = make_demo_board();
  const DemoBoardInfo info = demo_board_info(d);
  EXPECT_EQ(info.n_components, 29u);  // "29 devices"
  EXPECT_GE(info.n_emd_rules, 70u);   // "~100 minimum distances"
  EXPECT_LE(info.n_emd_rules, 120u);
  EXPECT_EQ(info.n_groups, 3u);       // "three functional groups"
  EXPECT_GE(info.n_nets, 10u);
}

TEST(DemoBoard, AutoPlacesCleanInSeconds) {
  const place::Design d = make_demo_board();
  place::Layout l = demo_board_initial_layout(d);
  const place::PlaceStats stats = place::auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LT(stats.elapsed_seconds, 5.0);  // paper: "in seconds"
  EXPECT_TRUE(place::DrcEngine(d).check(l).clean());
}

TEST(DemoBoard, TwoBoardVariantPartitions) {
  const place::Design d = make_demo_board_two_boards();
  EXPECT_EQ(d.board_count(), 2);
  place::Layout l = demo_board_initial_layout(d);
  const place::PlaceStats stats = place::auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  // Control components live on board 1 as pinned.
  for (std::size_t i = 0; i < d.components().size(); ++i) {
    if (d.components()[i].group == "control") {
      EXPECT_EQ(l.placements[i].board, 1);
    }
  }
  EXPECT_TRUE(place::DrcEngine(d).check(l).clean());
}

// The headline end-to-end reproduction, as a regression test. Keep the
// sweep small for test runtime; the bench uses the full resolution.
TEST(DesignFlow, ReproducesThePaperShape) {
  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 60;
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);

  // Sensitivity pruning saved field solves.
  EXPECT_GT(res.field_solves_saved, 0u);
  EXPECT_FALSE(res.simulated_pairs.empty());
  EXPECT_FALSE(res.rules.empty());

  // Fig 15: the original layout violates derived EMD rules.
  EXPECT_GT(res.drc_initial.count(place::ViolationKind::kEmd), 0u);
  // Fig 16/17: the auto-placed layout is clean.
  EXPECT_TRUE(res.drc_improved.clean());
  EXPECT_EQ(res.place_stats.failed, 0u);
  EXPECT_LT(res.place_stats.elapsed_seconds, 5.0);

  // Fig 2: emissions drop substantially (paper: up to ~20 dB).
  EXPECT_GT(res.peak_improvement_db, 10.0);

  // Fig 12/13/14: with-coupling prediction correlates with the synthetic
  // measurement far better than the no-coupling one.
  const emc::EmissionSpectrum meas = emc::pseudo_measure(res.initial_prediction);
  const double r_with = num::pearson(res.initial_prediction.level_dbuv, meas.level_dbuv);
  const double r_without =
      num::pearson(res.initial_no_coupling.level_dbuv, meas.level_dbuv);
  EXPECT_GT(r_with, 0.95);
  EXPECT_LT(r_without, 0.8);
  const double err_without =
      num::mean_abs_error(res.initial_no_coupling.level_dbuv, meas.level_dbuv);
  EXPECT_GT(err_without, 10.0);  // tens of dB off, as in Fig 12 vs 13
}

TEST(DesignFlow, NoPruningSimulatesAllPairs) {
  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 30;
  opt.sensitivity_threshold_db = 0.0;  // disable pruning
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);
  EXPECT_EQ(res.field_solves_saved, 0u);
  EXPECT_EQ(res.simulated_pairs.size(), 21u);  // 7 choose 2
}

TEST(DesignFlow, SurfacesKernelCountersInProfile) {
  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 30;
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);
  // The extraction work of this run, as deltas of the process-wide kernel
  // counters. Default options: everything runs the exact path.
  EXPECT_GT(res.profile.count("peec.kernel_sample_evals"), 0u);
  EXPECT_GT(res.profile.count("peec.kernel_exact_pairs"), 0u);
  EXPECT_EQ(res.profile.count("peec.kernel_analytic_pairs"), 0u);
  EXPECT_EQ(res.profile.count("peec.kernel_far_field_pairs"), 0u);
  // Clustered extraction is opt-in; a default run must surface its counters
  // as zero (the bit-identity guard for exact-by-default extraction).
  EXPECT_EQ(res.profile.count("peec.kernel_cluster_pairs"), 0u);
  EXPECT_EQ(res.profile.count("peec.kernel_cluster_skipped"), 0u);
}

TEST(DesignFlow, ClusteredKernelOptInCompletesAndSurfacesCounters) {
  // Same flow with hierarchical clustering enabled at a permissive theta:
  // the run must complete and the FlowResult profile must carry the cluster
  // counter deltas (nonzero whenever any model pair was far enough apart to
  // admit - the unfavorable layout spreads components across the board).
  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 30;
  opt.kernel.cluster = true;
  opt.kernel.cluster_theta = 2.5;
  opt.geometric_prescreen = true;
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.profile.count("peec.kernel_cluster_pairs"), 0u);
  EXPECT_GT(res.profile.count("peec.kernel_cluster_skipped"), 0u);
}

TEST(DesignFlow, FastPathAndBatchedOptInsCompleteAndStayClose) {
  BuckConverter ref_bc = make_buck_converter();
  FlowOptions ref_opt;
  ref_opt.sweep.n_points = 30;
  const FlowResult ref = run_design_flow(ref_bc, layout_unfavorable(ref_bc), ref_opt);

  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 30;
  opt.kernel.analytic_parallel = true;
  opt.kernel.far_field = true;
  opt.geometric_prescreen = true;
  opt.coupling_aware_placement = true;
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);

  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.drc_improved.clean());
  EXPECT_EQ(res.place_stats.failed, 0u);
  // The fast-path gates fired somewhere in the run, and the flow still
  // reaches a comparable improvement (the approximations are percent-level).
  EXPECT_GT(res.profile.count("peec.kernel_analytic_pairs") +
                res.profile.count("peec.kernel_far_field_pairs"),
            0u);
  EXPECT_GT(res.peak_improvement_db, 10.0);
  EXPECT_NEAR(res.initial_prediction.level_dbuv.front(),
              ref.initial_prediction.level_dbuv.front(), 3.0);
}

}  // namespace
}  // namespace emi::flow
