#include "src/ckt/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emi::ckt {
namespace {

TEST(Waveform, Dc) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e3), 3.3);
}

TEST(Waveform, Sine) {
  const Waveform w = Waveform::sine(1.0, 2.0, 50.0);
  EXPECT_NEAR(w.value(0.0), 1.0, 1e-12);                 // offset at phase 0
  EXPECT_NEAR(w.value(0.005), 3.0, 1e-9);                // quarter period peak
  EXPECT_NEAR(w.value(0.015), -1.0, 1e-9);               // trough
  const Waveform w90 = Waveform::sine(0.0, 1.0, 50.0, 90.0);
  EXPECT_NEAR(w90.value(0.0), 1.0, 1e-12);               // phase shift
  EXPECT_THROW(Waveform::sine(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Waveform, TrapezoidShape) {
  // 0 -> 1 V, period 10 us: rise 1 us, on 4 us, fall 1 us, off 4 us.
  const Waveform w = Waveform::trapezoid(0.0, 1.0, 10e-6, 1e-6, 4e-6, 1e-6);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(0.5e-6), 0.5, 1e-12);   // mid rise
  EXPECT_DOUBLE_EQ(w.value(1e-6), 1.0);
  EXPECT_DOUBLE_EQ(w.value(3e-6), 1.0);       // on the flat top
  EXPECT_NEAR(w.value(5.5e-6), 0.5, 1e-12);   // mid fall
  EXPECT_DOUBLE_EQ(w.value(8e-6), 0.0);       // resting low
  // Periodicity.
  EXPECT_NEAR(w.value(13e-6), w.value(3e-6), 1e-12);
  EXPECT_NEAR(w.value(-7e-6), w.value(3e-6), 1e-12);  // negative time wraps
}

TEST(Waveform, TrapezoidDelay) {
  const Waveform w = Waveform::trapezoid(0.0, 1.0, 10e-6, 1e-6, 4e-6, 1e-6, 2e-6);
  EXPECT_DOUBLE_EQ(w.value(2e-6), 0.0);
  EXPECT_DOUBLE_EQ(w.value(3e-6), 1.0);
}

TEST(Waveform, TrapezoidValidation) {
  EXPECT_THROW(Waveform::trapezoid(0, 1, 0.0, 1e-6, 1e-6, 1e-6), std::invalid_argument);
  // rise + on + fall > period
  EXPECT_THROW(Waveform::trapezoid(0, 1, 1e-6, 0.5e-6, 0.5e-6, 0.5e-6),
               std::invalid_argument);
  EXPECT_THROW(Waveform::trapezoid(0, 1, 1e-5, -1e-6, 1e-6, 1e-6), std::invalid_argument);
}

TEST(Waveform, TrapezoidZeroEdges) {
  // Degenerate square wave: zero rise/fall must not divide by zero.
  const Waveform w = Waveform::trapezoid(0.0, 1.0, 10e-6, 0.0, 5e-6, 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.value(4.9e-6), 1.0);
  EXPECT_DOUBLE_EQ(w.value(5.1e-6), 0.0);
}

TEST(Waveform, Pwl) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 10.0}, {3.0, 10.0}, {4.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(w.value(0.5), 5.0);    // interpolate
  EXPECT_DOUBLE_EQ(w.value(2.0), 10.0);   // flat
  EXPECT_DOUBLE_EQ(w.value(3.5), 5.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), 0.0);    // clamp right
  EXPECT_THROW(Waveform::pwl({}), std::invalid_argument);
  EXPECT_THROW(Waveform::pwl({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
}

TEST(Waveform, TrapezoidAccessors) {
  const Waveform w = Waveform::trapezoid(0.0, 12.0, 3.33e-6, 30e-9, 1.4e-6, 30e-9);
  EXPECT_DOUBLE_EQ(w.trap_low(), 0.0);
  EXPECT_DOUBLE_EQ(w.trap_high(), 12.0);
  EXPECT_DOUBLE_EQ(w.trap_period(), 3.33e-6);
  EXPECT_DOUBLE_EQ(w.trap_rise(), 30e-9);
  EXPECT_DOUBLE_EQ(w.trap_on(), 1.4e-6);
  EXPECT_DOUBLE_EQ(w.trap_fall(), 30e-9);
}

}  // namespace
}  // namespace emi::ckt
