#include "src/core/units.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "src/ckt/ac.hpp"
#include "src/ckt/circuit.hpp"
#include "src/peec/capacitance.hpp"

namespace emi::units {
namespace {

using namespace literals;

// --- compile-time checks ------------------------------------------------
// The header carries its own static_assert battery; these add the cases the
// issue calls out explicitly plus the API-facing guarantees tests rely on.

// Zero overhead: a Quantity is exactly one double, trivially copyable.
static_assert(sizeof(Henry) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Millimeters>);

// Exact decimal conversions hold at compile time.
static_assert((1.0_m).to<Millimeters>().raw() == 1000.0);
static_assert((2500.0_um).to<Millimeters>().raw() == 2.5);
static_assert((150.0_khz).to<Hertz>().raw() == 150000.0);
static_assert((4.7_uh).to<NanoHenry>().raw() == 4700.0);
static_assert((100.0_pf).to<NanoFarad>().raw() == 0.1);

// Same-dimension heterogeneous comparison and arithmetic go through SI.
static_assert(1_m == 1000_mm);
static_assert(999.0_mm < 1.0_m);
static_assert((1.0_m + 1.0_mm).si() == 1.001);

// Dimensional identities from the paper's formulas.
static_assert(std::is_same_v<decltype(5.0_h * 2.0_a), Weber>);          // L*I -> flux
static_assert(std::is_same_v<decltype(12.0_v / 3.0_a), Ohm>);           // V/I -> R
static_assert(std::is_same_v<decltype(1.0 / (50.0_ohm * 1.0_f)), Hertz>);
static_assert(std::is_same_v<decltype(angular(1.0_hz)), RadPerSec>);
static_assert(std::is_same_v<decltype(RadPerSec(3.0) * Seconds(2.0)), Radians>);

// Dimensionless results decay to double; nothing else does (checked in the
// negative-compile harness, tests/negative_compile/).
static_assert(std::is_convertible_v<decltype(1.0_mm / 1.0_m), double>);
static_assert(!std::is_convertible_v<Millimeters, double>);
static_assert(!std::is_convertible_v<double, Millimeters>);
static_assert(!std::is_convertible_v<Meters, Millimeters>);

TEST(Units, RoundTripThroughSiIsExactForDecimalRatios) {
  const Millimeters d{17.5};
  EXPECT_DOUBLE_EQ(d.to<Meters>().to<Millimeters>().raw(), 17.5);
  const NanoHenry l{330.0};
  EXPECT_DOUBLE_EQ(l.to<Henry>().raw(), 330e-9);
  EXPECT_DOUBLE_EQ((4.7_uf).to<Farad>().raw(), 4.7e-6);
}

TEST(Units, RoundTripToleranceForNonDecimalValues) {
  // Values that are not exactly representable still round-trip to 1 ulp-ish.
  const Millimeters d{0.1 + 0.2};
  EXPECT_NEAR(d.to<Micrometers>().to<Millimeters>().raw(), d.raw(), 1e-15);
}

TEST(Units, LcResonanceLandsOnHertzViaAngular) {
  // 1/sqrt(L*C): 5 uH with 100 nF -> w0 ~ 1.414e6 rad/s, f0 ~ 225 kHz.
  const Henry l = (5.0_uh).to<Henry>();
  const Farad c = (100.0_nf).to<Farad>();
  const auto inv_sqrt_lc = 1.0 / units::sqrt(l * c);
  static_assert(std::is_same_v<std::remove_const_t<decltype(inv_sqrt_lc)>, Hertz>);
  const RadPerSec w0 = angular(cycles(angular(inv_sqrt_lc * 1.0)));
  EXPECT_NEAR(inv_sqrt_lc.raw(), 1.0 / std::sqrt(5e-6 * 100e-9), 1e-3);
  EXPECT_NEAR(w0.raw(), 2.0 * kPi * inv_sqrt_lc.raw(), 1e-6);
  EXPECT_NEAR(cycles(w0).raw(), inv_sqrt_lc.raw(), 1e-6);
}

TEST(Units, ScalarQuantitiesFlowIntoDouble) {
  const double k = (30.0_mm) / (60.0_mm);  // coupling-style ratio
  EXPECT_DOUBLE_EQ(k, 0.5);
  EXPECT_DOUBLE_EQ(units::abs(-3.0_mm).raw(), 3.0);
  EXPECT_EQ(units::min(2.0_mm, 5.0_mm), 2.0_mm);
  EXPECT_EQ(units::max(2.0_mm, 5.0_mm), 5.0_mm);
}

TEST(Units, DecibelAddsWhereLinearMultiplies) {
  const Decibel g1 = amplitude_db(10.0);   // 20 dB
  const Decibel g2 = amplitude_db(100.0);  // 40 dB
  EXPECT_NEAR((g1 + g2).raw(), 60.0, 1e-12);
  EXPECT_NEAR(amplitude_ratio(g1 + g2), 1000.0, 1e-9);
  EXPECT_NEAR(power_db(100.0).raw(), 20.0, 1e-12);
  EXPECT_LT(-3.0_db, 0.0_db);
}

TEST(Units, DbuvConventionMatchesEmcFormula) {
  // 1 mV = 60 dBuV.
  EXPECT_NEAR(dbuv(Volt{1e-3}).raw(), 60.0, 1e-12);
  EXPECT_NEAR(volts_from_dbuv(60.0_db).raw(), 1e-3, 1e-15);
  EXPECT_NEAR(volts_from_dbuv(dbuv(Volt{0.5})).raw(), 0.5, 1e-12);
}

// --- adoption smoke checks ----------------------------------------------

TEST(Units, TypedCircuitBuildersMatchRawBuilders) {
  ckt::Circuit raw;
  raw.add_resistor("R1", "a", "0", 50.0);
  raw.add_capacitor("C1", "a", "0", 1e-9);
  raw.add_inductor("L1", "a", "0", 5e-6);

  ckt::Circuit typed;
  typed.add_resistor("R1", "a", "0", 50.0_ohm);
  typed.add_capacitor("C1", "a", "0", (1.0_nf).to<Farad>());
  typed.add_inductor("L1", "a", "0", (5.0_uh).to<Henry>());
  typed.set_inductance("L1", (5.0_uh).to<Henry>());

  EXPECT_DOUBLE_EQ(raw.resistors()[0].ohms, typed.resistors()[0].ohms);
  EXPECT_DOUBLE_EQ(raw.capacitors()[0].farads, typed.capacitors()[0].farads);
  EXPECT_DOUBLE_EQ(raw.inductors()[0].henries, typed.inductors()[0].henries);
}

TEST(Units, TypedAcSweepMatchesRawSweep) {
  ckt::Circuit c;
  c.add_vsource("V1", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 50.0_ohm);
  c.add_capacitor("C1", "out", "0", Farad{1e-9});

  const std::vector<Hertz> grid =
      ckt::log_frequency_grid((10.0_khz).to<Hertz>(), Hertz{10e6}, 11).value();
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front().raw(), 10e3);
  EXPECT_DOUBLE_EQ(grid.back().raw(), 10e6);

  std::vector<double> raw_grid;
  for (const Hertz f : grid) raw_grid.push_back(f.raw());

  const ckt::AcSolution typed = ckt::ac_solve(c, grid);
  const ckt::AcSolution raw = ckt::ac_solve(c, raw_grid);
  const auto mag_t = typed.voltage_magnitude("out");
  const auto mag_r = raw.voltage_magnitude("out");
  ASSERT_EQ(mag_t.size(), mag_r.size());
  for (std::size_t i = 0; i < mag_t.size(); ++i) {
    EXPECT_DOUBLE_EQ(mag_t[i], mag_r[i]);
  }
}

TEST(Units, PeecCapacitiveCornerUsesTypedImpedance) {
  // 100 pF against 50 ohm: f_c = 1/(2*pi*R*C) ~ 31.8 MHz.
  const Hertz fc = peec::capacitive_corner((100.0_pf).to<Farad>(), 50.0_ohm);
  EXPECT_NEAR(fc.raw() / 1e6, 31.8, 0.1);
}

}  // namespace
}  // namespace emi::units
