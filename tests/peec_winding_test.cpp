#include "src/peec/winding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/peec/partial_inductance.hpp"

namespace emi::peec {
namespace {

TEST(Ring, GeometryClosedAndOnCircle) {
  const SegmentPath r = ring({0, 0, 0}, {0, 0, 1}, Millimeters{10.0}, 16, Millimeters{0.5});
  ASSERT_EQ(r.segments.size(), 16u);
  for (std::size_t i = 0; i < r.segments.size(); ++i) {
    // Chain closure: end of segment i is start of segment i+1.
    const Segment& s = r.segments[i];
    const Segment& next = r.segments[(i + 1) % r.segments.size()];
    EXPECT_NEAR((s.b - next.a).norm(), 0.0, 1e-12);
    // Vertices lie on the circle.
    EXPECT_NEAR(s.a.norm(), 10.0, 1e-12);
    EXPECT_NEAR(s.a.z, 0.0, 1e-12);
  }
}

// Grover: circular loop L = mu0*R*(ln(8R/a) - 2). A 16-gon ring should land
// within ~10 % of the circular value.
TEST(Ring, LoopInductanceNearAnalytic) {
  const double R = 10.0, a = 0.5;
  const SegmentPath r = ring({0, 0, 0}, {0, 0, 1}, Millimeters{R}, 24, Millimeters{a});
  const double l = path_inductance(r, {6, 2});
  const double analytic = kMu0 * R * 1e-3 * (std::log(8.0 * R / a) - 2.0);
  EXPECT_NEAR(l / analytic, 1.0, 0.12);
}

TEST(Ring, Validation) {
  EXPECT_THROW(ring({0, 0, 0}, {0, 0, 1}, Millimeters{10.0}, 2, Millimeters{0.5}), std::invalid_argument);
  EXPECT_THROW(ring({0, 0, 0}, {0, 0, 1}, Millimeters{-1.0}, 8, Millimeters{0.5}), std::invalid_argument);
}

TEST(Solenoid, TurnWeightsSumToTurns) {
  const SegmentPath s = solenoid({0, 0, 0}, {0, 1, 0}, Millimeters{6.0}, Millimeters{12.0}, 40, 5, 12, Millimeters{0.4});
  ASSERT_EQ(s.segments.size(), 5u * 12u);
  double weight_per_ring = 0.0;
  for (std::size_t i = 0; i < 12; ++i) weight_per_ring = s.segments[i].weight;
  EXPECT_NEAR(weight_per_ring * 5.0, 40.0, 1e-12);
}

TEST(Solenoid, InductanceScalesWithTurnsSquared) {
  const SegmentPath s1 = solenoid({0, 0, 0}, {0, 1, 0}, Millimeters{6.0}, Millimeters{12.0}, 20, 5, 12, Millimeters{0.4});
  const SegmentPath s2 = solenoid({0, 0, 0}, {0, 1, 0}, Millimeters{6.0}, Millimeters{12.0}, 40, 5, 12, Millimeters{0.4});
  const double ratio = path_inductance(s2, {4, 1}) / path_inductance(s1, {4, 1});
  EXPECT_NEAR(ratio, 4.0, 1e-6);
}

// Long-solenoid check: L ~ mu0 * N^2 * A / len within a geometry factor
// (Nagaoka correction < 1); the segmented model must land below the ideal
// value but within a factor ~2 for len/r = 4.
TEST(Solenoid, OrderOfMagnitudeVsIdeal) {
  const double radius = 5.0, len = 20.0;
  const std::size_t turns = 50;
  const SegmentPath s = solenoid({0, 0, 0}, {0, 0, 1}, Millimeters{radius}, Millimeters{len}, turns, 8, 16, Millimeters{0.3});
  const double l = path_inductance(s, {4, 1});
  const double area = geom::kPi * radius * radius * 1e-6;
  const double ideal = kMu0 * static_cast<double>(turns * turns) * area / (len * 1e-3);
  EXPECT_LT(l, ideal);
  EXPECT_GT(l, 0.3 * ideal);
}

TEST(ToroidSector, SenseFlipsWeights) {
  const SegmentPath pos =
      toroid_sector_winding({0, 0, 0}, Millimeters{10.0}, Millimeters{3.0}, 0.0, 120.0, 10, 4, 8, Millimeters{0.4}, +1);
  const SegmentPath neg =
      toroid_sector_winding({0, 0, 0}, Millimeters{10.0}, Millimeters{3.0}, 0.0, 120.0, 10, 4, 8, Millimeters{0.4}, -1);
  ASSERT_EQ(pos.segments.size(), neg.segments.size());
  for (std::size_t i = 0; i < pos.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(pos.segments[i].weight, -neg.segments[i].weight);
  }
}

TEST(ToroidSector, RingCentersOnMajorCircle) {
  const SegmentPath w =
      toroid_sector_winding({0, 0, 0}, Millimeters{10.0}, Millimeters{3.0}, 0.0, 90.0, 8, 4, 8, Millimeters{0.4});
  // Each ring has 8 facets; ring centers = mean of facet vertices.
  for (std::size_t ring_i = 0; ring_i < 4; ++ring_i) {
    Vec3 c{};
    for (std::size_t f = 0; f < 8; ++f) c += w.segments[ring_i * 8 + f].a;
    c = c / 8.0;
    EXPECT_NEAR(std::sqrt(c.x * c.x + c.y * c.y), 10.0, 0.5);
  }
  EXPECT_THROW(toroid_sector_winding({0, 0, 0}, Millimeters{2.0}, Millimeters{3.0}, 0.0, 90.0, 8, 4, 8, Millimeters{0.4}),
               std::invalid_argument);
}

TEST(RectangularLoop, GeometryAndAxis) {
  const SegmentPath p = rectangular_loop(Millimeters{20.0}, Millimeters{8.0}, Millimeters{0.4});
  ASSERT_EQ(p.segments.size(), 4u);
  EXPECT_NEAR(p.total_length(), 2.0 * (20.0 + 8.0), 1e-12);
  // Loop lies in the x/z plane: all y coordinates zero.
  for (const auto& s : p.segments) {
    EXPECT_DOUBLE_EQ(s.a.y, 0.0);
    EXPECT_DOUBLE_EQ(s.b.y, 0.0);
  }
  EXPECT_THROW(rectangular_loop(Millimeters{0.0}, Millimeters{8.0}, Millimeters{0.4}), std::invalid_argument);
}

TEST(Pose, TransformRotatesAndTranslates) {
  const SegmentPath p = rectangular_loop(Millimeters{10.0}, Millimeters{4.0}, Millimeters{0.3});
  const Pose pose{{5.0, 7.0, 0.0}, 90.0};
  const SegmentPath t = transformed(p, pose);
  ASSERT_EQ(t.segments.size(), p.segments.size());
  // Total length is preserved under the rigid transform.
  EXPECT_NEAR(t.total_length(), p.total_length(), 1e-12);
  // The local point (-5, 0, 0) maps to (5, 2, 0) under rot90 + (5,7).
  EXPECT_NEAR(t.segments[0].a.x, 5.0, 1e-12);
  EXPECT_NEAR(t.segments[0].a.y, 2.0, 1e-12);
}

TEST(Pose, AxisRotation) {
  const Pose pose{{0, 0, 0}, 90.0};
  const Vec3 axis = pose.rotate_dir({0, 1, 0});
  EXPECT_NEAR(axis.x, -1.0, 1e-12);
  EXPECT_NEAR(axis.y, 0.0, 1e-12);
}

TEST(Trace, EquivalentRadius) {
  const SegmentPath t = trace({0, 0, 0}, {10, 0, 0}, Millimeters{1.0}, Millimeters{0.035});
  ASSERT_EQ(t.segments.size(), 1u);
  EXPECT_NEAR(t.segments[0].radius, 0.2235 * 1.035, 1e-12);
}

}  // namespace
}  // namespace emi::peec
