#include <gtest/gtest.h>

#include <sstream>

#include "src/flow/buck_converter.hpp"
#include "src/flow/transient_buck.hpp"
#include "src/io/spice.hpp"
#include "src/numeric/stats.hpp"

namespace emi {
namespace {

TEST(SpiceExport, EmitsAllElementCards) {
  ckt::Circuit c;
  c.add_vsource("VIN", "in", "0", ckt::Waveform::dc(12.0), 1.0);
  c.add_resistor("R1", "in", "a", 50.0);
  c.add_inductor("L1", "a", "b", 1e-6);
  c.add_inductor("L2", "b", "0", 2e-6);
  c.add_coupling("K12", "L1", "L2", 0.3);
  c.add_capacitor("C1", "b", "0", 1e-9);
  c.add_isource("IN1", "0", "a", ckt::Waveform::dc(0.0), 1e-3);
  c.add_switch("S1", "a", "0", ckt::Waveform::dc(1.0));
  c.add_diode("D1", "b", "0");

  std::stringstream out;
  io::write_spice_netlist(out, c);
  const std::string text = out.str();
  EXPECT_NE(text.find("VIN in 0 DC 12 AC 1"), std::string::npos);
  EXPECT_NE(text.find("R1 in a 50"), std::string::npos);
  EXPECT_NE(text.find("L1 a b 1e-06"), std::string::npos);
  EXPECT_NE(text.find("K12 L1 L2 0.3"), std::string::npos);
  EXPECT_NE(text.find("C1 b 0 1e-09"), std::string::npos);
  EXPECT_NE(text.find("IN1 0 a DC 0"), std::string::npos);
  EXPECT_NE(text.find("D1 b 0 DEMI"), std::string::npos);
  EXPECT_NE(text.find(".model DEMI"), std::string::npos);
  EXPECT_NE(text.find(".ac dec"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(SpiceExport, PrefixesNonConformingNames) {
  ckt::Circuit c;
  c.add_resistor("ESR", "a", "0", 1.0);  // does not start with R
  std::stringstream out;
  io::SpiceOptions opt;
  opt.with_ac_analysis = false;
  io::write_spice_netlist(out, c, opt);
  EXPECT_NE(out.str().find("RESR a 0 1"), std::string::npos);
  EXPECT_EQ(out.str().find(".ac"), std::string::npos);
}

TEST(SpiceExport, BuckConverterDeckIsComplete) {
  const flow::BuckConverter bc = flow::make_buck_converter();
  std::stringstream out;
  io::write_spice_netlist(out, bc.circuit);
  const std::string text = out.str();
  // Every inductor appears.
  for (const auto& l : bc.circuit.inductors()) {
    EXPECT_NE(text.find(l.name), std::string::npos) << l.name;
  }
}

TEST(ParasiticCapacitance, InstalledForCloseBodies) {
  const flow::BuckConverter bc = flow::make_buck_converter();
  const place::Layout bad = flow::layout_unfavorable(bc);
  const ckt::Circuit base = bc.circuit;
  const ckt::Circuit with_cp =
      flow::add_parasitic_capacitances(bc, bad, base, 10e-15);
  EXPECT_GT(with_cp.capacitors().size(), base.capacitors().size());
  // All parasitic caps are small (sub-pF scale for these geometries).
  for (const auto& cap : with_cp.capacitors()) {
    if (cap.name.rfind("CP_", 0) == 0) {
      EXPECT_LT(cap.farads, 5e-12);
      EXPECT_GE(cap.farads, 10e-15);
    }
  }
}

TEST(ParasiticCapacitance, SameNetPairsSkipped) {
  const flow::BuckConverter bc = flow::make_buck_converter();
  const place::Layout bad = flow::layout_unfavorable(bc);
  const ckt::Circuit with_cp =
      flow::add_parasitic_capacitances(bc, bad, bc.circuit, 0.0);
  // CE1 and PWRLOOP share node "nsw": no CP between them.
  for (const auto& cap : with_cp.capacitors()) {
    EXPECT_EQ(cap.name.find("CP_CE1_PWRLOOP"), std::string::npos);
  }
}

TEST(SwitchingBuck, CircuitMatchesAcModelTopology) {
  const ckt::Circuit c = flow::make_switching_buck();
  EXPECT_EQ(c.switches().size(), 1u);
  EXPECT_EQ(c.diodes().size(), 1u);
  EXPECT_NO_THROW(c.inductor_index("L_BUCK"));
  EXPECT_NO_THROW(c.inductor_index("L_LISN"));
  EXPECT_TRUE(c.find_node("lisn_meas").has_value());
}

TEST(SwitchingBuck, TimeDomainValidationRegulatesAndMatchesPrediction) {
  // Moderate run to keep test time in check; the bench uses a longer
  // record. The output LC (100 uH / 47 uF, Q ~ 3.4 into 5 ohm) settles in
  // about half a millisecond.
  flow::SwitchingBuckParams p;
  const flow::TimeDomainValidation v =
      flow::validate_time_domain(p, /*t_stop=*/3e-3, /*dt=*/25e-9);
  // Functional: output near duty * Vin.
  EXPECT_NEAR(v.v_out_avg, p.duty * p.v_in, 1.5);
  // The FFT spectrum exists and covers the switching harmonics.
  EXPECT_GT(v.fft_spectrum.freqs_hz.size(), 100u);
  // The envelope prediction is an upper-bound-style estimate: at the first
  // switching harmonics it must not underestimate the FFT level by more
  // than a few dB, nor overshoot absurdly.
  double worst_under = 0.0;
  for (std::size_t h = 1; h <= 5; ++h) {
    const double f = p.f_sw_hz * static_cast<double>(h);
    if (f < 150e3) continue;
    const double fft_level =
        num::interp(v.fft_spectrum.freqs_hz, v.fft_spectrum.level_dbuv, f);
    const double pred_level = num::interp(v.envelope_prediction.freqs_hz,
                                          v.envelope_prediction.level_dbuv, f);
    worst_under = std::max(worst_under, fft_level - pred_level);
  }
  EXPECT_LT(worst_under, 10.0);
}

}  // namespace
}  // namespace emi
