#include "src/numeric/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace emi::num {
namespace {

TEST(Fft, RoundTrip) {
  std::vector<std::complex<double>> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = {std::sin(0.3 * static_cast<double>(i)), std::cos(0.1 * static_cast<double>(i))};
  }
  auto y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(Fft, DeltaIsFlat) {
  std::vector<std::complex<double>> x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, PureToneLandsOnBin) {
  constexpr std::size_t n = 128;
  std::vector<std::complex<double>> x(n);
  constexpr std::size_t bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * bin * static_cast<double>(i) / n;
    x[i] = {std::cos(ph), 0.0};
  }
  fft(x);
  EXPECT_NEAR(std::abs(x[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[n - bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[bin + 1]), 0.0, 1e-9);
}

TEST(Fft, ThrowsOnNonPowerOfTwo) {
  std::vector<std::complex<double>> x(12);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = {std::sin(0.7 * static_cast<double>(i)) + 0.2, 0.0};
  }
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto y = x;
  fft(y);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy, 1e-8);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(AmplitudeSpectrum, RecoversSineAmplitude) {
  constexpr double fs = 1000.0;
  constexpr double f0 = 125.0;  // exactly on a bin for n=1024
  constexpr double amp = 3.0;
  std::vector<double> sig(1024);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = amp * std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  // Unwindowed on-bin sine recovers the amplitude exactly.
  const auto spec = amplitude_spectrum(sig, fs, /*windowed=*/false);
  double peak = 0.0, peak_freq = 0.0;
  for (const auto& p : spec) {
    if (p.amplitude > peak) {
      peak = p.amplitude;
      peak_freq = p.freq_hz;
    }
  }
  EXPECT_NEAR(peak, amp, 1e-9);
  EXPECT_NEAR(peak_freq, f0, 1e-9);
}

TEST(AmplitudeSpectrum, WindowedRecoversApproximately) {
  constexpr double fs = 1000.0;
  constexpr double f0 = 125.0;
  std::vector<double> sig(1024);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = 2.0 * std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  const auto spec = amplitude_spectrum(sig, fs, /*windowed=*/true);
  double peak = 0.0;
  for (const auto& p : spec) peak = std::max(peak, p.amplitude);
  EXPECT_NEAR(peak, 2.0, 0.1);
}

TEST(AmplitudeSpectrum, DcComponent) {
  const std::vector<double> sig(256, 4.0);
  const auto spec = amplitude_spectrum(sig, 100.0, /*windowed=*/false);
  EXPECT_NEAR(spec[0].amplitude, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(spec[0].freq_hz, 0.0);
}

TEST(HannWindow, EndsAtZeroPeakAtCenter) {
  std::vector<double> w(65, 1.0);
  hann_window(w);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

}  // namespace
}  // namespace emi::num
