// Budgeted flow runs: injected deadline expiry drives the degradation ladder
// deterministically (the fire decision is a pure function of stage name and
// attempt index), real budgets surface as kDeadlineExceeded diagnostics
// instead of hangs, and cooperative cancellation aborts the pipeline with a
// partial result that a later resume completes bit-identically.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/deadline.hpp"
#include "src/core/fault_injection.hpp"
#include "src/core/thread_pool.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/checkpoint.hpp"
#include "src/flow/design_flow.hpp"

namespace emi::flow {
namespace {

constexpr std::array<const char*, 5> kStages = {
    "flow.sensitivity", "flow.initial_prediction", "flow.rule_derivation",
    "flow.placement", "flow.verification"};

struct Guards {
  ~Guards() {
    core::FaultInjector::instance().disarm();
    core::ThreadPool::set_global_thread_count(core::ThreadPool::default_thread_count());
  }
};

FlowResult run_once(const FlowOptions& opt) {
  BuckConverter bc = make_buck_converter();
  return run_design_flow(bc, layout_unfavorable(bc), opt);
}

FlowOptions quick_options() {
  FlowOptions opt;
  opt.sweep.n_points = 30;
  return opt;
}

std::vector<std::string> diag_strings(const FlowResult& r) {
  std::vector<std::string> out;
  for (const StageDiagnostic& d : r.diagnostics) {
    out.push_back(d.stage + "|" + d.status.to_string() + "|" +
                  std::to_string(d.attempts) + "|" + (d.recovered ? "r" : "f"));
  }
  return out;
}

// Whether the injected expiry fires for (stage, attempt) - the same pure
// decision the StageDriver makes.
bool expiry_fires(const char* stage, int attempt) {
  return core::FaultInjector::instance().fire(
      core::FaultSite::kDeadline,
      core::fault::mix(core::fault::fnv64(stage),
                       static_cast<std::uint64_t>(attempt)));
}

// A first-attempt expiry must be recovered by a degraded retry; the
// diagnostics are predictable from the injector's pure decisions alone.
TEST(FlowDeadline, InjectedExpiryFollowsTheDegradationLadder) {
  Guards guards;
  core::FaultInjector& inj = core::FaultInjector::instance();

  // Find a seed where >= 2 stages expire on their first attempt and none on
  // the retry, so every stage recovers degraded and the flow completes.
  std::uint64_t seed = 0;
  std::array<bool, kStages.size()> first_fires{};
  bool found = false;
  for (std::uint64_t s = 0; s < 1000 && !found; ++s) {
    inj.configure(core::FaultSite::kDeadline, 0.5, s);
    int fired0 = 0;
    bool any_retry_fires = false;
    for (std::size_t i = 0; i < kStages.size(); ++i) {
      first_fires[i] = expiry_fires(kStages[i], 0);
      fired0 += first_fires[i] ? 1 : 0;
      any_retry_fires = any_retry_fires || expiry_fires(kStages[i], 1);
    }
    if (fired0 >= 2 && !any_retry_fires) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  inj.configure(core::FaultSite::kDeadline, 0.5, seed);
  const FlowResult first = run_once(quick_options());
  EXPECT_TRUE(first.complete);
  EXPECT_GT(first.peak_improvement_db, 0.0);
  // Exactly the predicted stages show a recovered kDeadlineExceeded diag.
  std::vector<std::string> expected_stages;
  for (std::size_t i = 0; i < kStages.size(); ++i) {
    if (first_fires[i]) expected_stages.push_back(kStages[i]);
  }
  ASSERT_EQ(first.diagnostics.size(), expected_stages.size());
  for (std::size_t i = 0; i < expected_stages.size(); ++i) {
    const StageDiagnostic& d = first.diagnostics[i];
    EXPECT_EQ(d.stage, expected_stages[i]);
    EXPECT_EQ(d.status.code(), core::ErrorCode::kDeadlineExceeded);
    EXPECT_TRUE(d.recovered);
    EXPECT_EQ(d.attempts, 2);
  }

  // Same degradation path => bit-identical results, at any thread count.
  for (std::size_t lanes : {1u, 4u}) {
    core::ThreadPool::set_global_thread_count(lanes);
    inj.configure(core::FaultSite::kDeadline, 0.5, seed);
    const FlowResult again = run_once(quick_options());
    EXPECT_EQ(diag_strings(first), diag_strings(again)) << lanes << " lanes";
    EXPECT_EQ(first.initial_prediction.level_dbuv, again.initial_prediction.level_dbuv)
        << lanes << " lanes";
    EXPECT_EQ(first.improved_prediction.level_dbuv, again.improved_prediction.level_dbuv)
        << lanes << " lanes";
    EXPECT_EQ(first.peak_improvement_db, again.peak_improvement_db);
  }
}

// Rate 1: every attempt of every stage starts expired. The flow must come
// back partial - never hang, never throw - with the full set of
// kDeadlineExceeded diagnostics, and still fall back to all-pairs
// sensitivity like any other sensitivity failure.
TEST(FlowDeadline, TotalExpiryOutageDegradesToPartialResult) {
  Guards guards;
  core::FaultInjector::instance().configure(core::FaultSite::kDeadline, 1.0, 7);

  const FlowResult res = run_once(quick_options());
  EXPECT_FALSE(res.complete);
  ASSERT_FALSE(res.diagnostics.empty());
  bool saw_sensitivity = false, saw_placement = false;
  for (const StageDiagnostic& d : res.diagnostics) {
    EXPECT_EQ(d.status.code(), core::ErrorCode::kDeadlineExceeded) << d.stage;
    EXPECT_FALSE(d.recovered) << d.stage;
    saw_sensitivity = saw_sensitivity || d.stage == "flow.sensitivity";
    saw_placement = saw_placement || d.stage == "flow.placement";
  }
  EXPECT_TRUE(saw_sensitivity);
  EXPECT_TRUE(saw_placement);
  // Sensitivity pruning unavailable -> every pair scheduled for simulation.
  EXPECT_EQ(res.simulated_pairs.size(), 21u);

  core::FaultInjector::instance().configure(core::FaultSite::kDeadline, 1.0, 7);
  const FlowResult again = run_once(quick_options());
  EXPECT_EQ(diag_strings(res), diag_strings(again));
}

// A real (wall-clock) budget that cannot possibly fit the flow: the run
// returns a partial result promptly with structured kDeadlineExceeded
// diagnostics. Timing decides *where* it stops, so only the shape is
// asserted, not the exact stage list.
TEST(FlowDeadline, TinyRealBudgetNeverHangsOrThrows) {
  Guards guards;
  FlowOptions opt = quick_options();
  opt.total_budget_ms = 1;
  FlowResult res;
  ASSERT_NO_THROW(res = run_once(opt));
  EXPECT_FALSE(res.complete);
  ASSERT_FALSE(res.diagnostics.empty());
  bool saw_deadline = false;
  for (const StageDiagnostic& d : res.diagnostics) {
    saw_deadline =
        saw_deadline || d.status.code() == core::ErrorCode::kDeadlineExceeded;
  }
  EXPECT_TRUE(saw_deadline);
}

TEST(FlowDeadline, PreRaisedTokenCancelsThePipelineImmediately) {
  Guards guards;
  core::CancelToken token;
  token.request_cancel();
  FlowOptions opt = quick_options();
  opt.cancel = &token;

  const FlowResult res = run_once(opt);
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.diagnostics.size(), 1u);  // pipeline stops at the first stage
  EXPECT_EQ(res.diagnostics[0].stage, "flow.sensitivity");
  EXPECT_EQ(res.diagnostics[0].status.code(), core::ErrorCode::kCancelled);
  EXPECT_FALSE(res.diagnostics[0].recovered);
  EXPECT_EQ(res.place_stats.placed, 0u);  // placement never ran
}

// Cancel mid-flow (deterministically: at the stage following a checkpointed
// prefix), then clear the token and resume. The final result must be
// bit-identical to an uninterrupted run - the cancelled attempt left no
// trace in the checkpoint.
TEST(FlowDeadline, CancelledThenResumedMatchesUninterrupted) {
  Guards guards;
  const std::string ckpt = std::string(::testing::TempDir()) + "flow_cancel.ckpt";
  std::remove(ckpt.c_str());

  const FlowResult reference = run_once(quick_options());
  ASSERT_TRUE(reference.complete);

  // Run a prefix: checkpoint through initial_prediction, then stop (the
  // deterministic SIGKILL stand-in).
  FlowOptions opt = quick_options();
  opt.checkpoint_path = ckpt;
  opt.stop_after_stage = "initial_prediction";
  const FlowResult prefix = run_once(opt);
  EXPECT_FALSE(prefix.complete);

  // Resume with a raised token: the next stage is cancelled, nothing new is
  // checkpointed.
  core::CancelToken token;
  token.request_cancel();
  FlowOptions cancel_opt = quick_options();
  cancel_opt.checkpoint_path = ckpt;
  cancel_opt.cancel = &token;
  BuckConverter bc1 = make_buck_converter();
  const FlowResult cancelled =
      resume_design_flow(bc1, layout_unfavorable(bc1), cancel_opt);
  EXPECT_FALSE(cancelled.complete);
  bool saw_cancel = false;
  for (const StageDiagnostic& d : cancelled.diagnostics) {
    saw_cancel = saw_cancel || d.status.code() == core::ErrorCode::kCancelled;
  }
  EXPECT_TRUE(saw_cancel);

  // Clear the token and resume again: completes, bit-identical to the
  // uninterrupted run.
  token.reset();
  BuckConverter bc2 = make_buck_converter();
  const FlowResult resumed =
      resume_design_flow(bc2, layout_unfavorable(bc2), cancel_opt);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.diagnostics.empty());
  EXPECT_EQ(reference.initial_prediction.level_dbuv,
            resumed.initial_prediction.level_dbuv);
  EXPECT_EQ(reference.improved_prediction.level_dbuv,
            resumed.improved_prediction.level_dbuv);
  EXPECT_EQ(reference.peak_improvement_db, resumed.peak_improvement_db);
  EXPECT_EQ(reference.simulated_pairs, resumed.simulated_pairs);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace emi::flow
