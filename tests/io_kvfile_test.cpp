// Checksummed kv state files - the persistence primitive under the
// service's job records: byte-stable serialization, line-numbered rejection
// of every corruption class, and the atomic file round trip.
#include "src/io/kvfile.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"

namespace emi::io {
namespace {

constexpr std::string_view kMagic = "EMITEST 1";

std::vector<KvRecord> sample_records() {
  return {{"state", "running"},
          {"detail", "value with spaces"},
          {"state", "done"},  // duplicates preserved, order preserved
          {"empty", "-"}};
}

TEST(KvFile, RoundTripPreservesOrderAndDuplicates) {
  const std::vector<KvRecord> in = sample_records();
  const std::string text = serialize_kv(kMagic, in);
  const core::Result<std::vector<KvRecord>> out = parse_kv(kMagic, text);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), in);
  // Identical records serialize to identical bytes (fingerprint stability).
  EXPECT_EQ(serialize_kv(kMagic, sample_records()), text);
}

TEST(KvFile, NewlinesInValuesAreFlattened) {
  const std::vector<KvRecord> in = {{"detail", "line1\nline2\rline3"}};
  const core::Result<std::vector<KvRecord>> out =
      parse_kv(kMagic, serialize_kv(kMagic, in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].second, "line1 line2 line3");
}

TEST(KvFile, MagicMismatchIsLineOneParseError) {
  const std::string text = serialize_kv("EMIOTHER 7", sample_records());
  const core::Result<std::vector<KvRecord>> out = parse_kv(kMagic, text);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::ErrorCode::kParseError);
  EXPECT_NE(out.status().message().find("line 1"), std::string::npos);
}

TEST(KvFile, TruncationAndCorruptionAreStructuredRejections) {
  const std::string text = serialize_kv(kMagic, sample_records());

  // Truncated before the checksum line: "missing checksum".
  const std::string truncated = text.substr(0, text.rfind("checksum "));
  core::Result<std::vector<KvRecord>> out = parse_kv(kMagic, truncated);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::ErrorCode::kParseError);
  EXPECT_NE(out.status().message().find("checksum"), std::string::npos);

  // A flipped payload byte: checksum mismatch.
  std::string flipped = text;
  flipped[text.find("running") + 1] ^= 0x20;
  out = parse_kv(kMagic, flipped);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("mismatch"), std::string::npos);

  // Bytes appended after the checksum line.
  out = parse_kv(kMagic, text + "stray\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("trailing"), std::string::npos);

  EXPECT_FALSE(parse_kv(kMagic, "").ok());
}

TEST(KvFile, MalformedRecordBehindValidChecksumIsLineNumbered) {
  // Corruption the checksum cannot catch (written by a buggy producer, not a
  // torn write): a non-kv payload line with a *correct* checksum.
  std::string payload = std::string(kMagic) + "\nnot-a-kv-line\n";
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(core::fault::fnv64(payload)));
  const core::Result<std::vector<KvRecord>> out =
      parse_kv(kMagic, payload + "checksum " + buf + "\n");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::ErrorCode::kParseError);
  EXPECT_NE(out.status().message().find("line 2"), std::string::npos);
}

TEST(KvFile, FileRoundTripAndMissingFile) {
  const std::string path = std::string(::testing::TempDir()) + "kvfile_rt.state";
  ASSERT_TRUE(save_kv_file(path, kMagic, sample_records()).ok());
  const core::Result<std::vector<KvRecord>> out = load_kv_file(path, kMagic);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), sample_records());

  const core::Result<std::vector<KvRecord>> missing =
      load_kv_file(path + ".does-not-exist", kMagic);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), core::ErrorCode::kIoError);
}

}  // namespace
}  // namespace emi::io
