// The job service end to end: lifecycle persistence, bit-identical results
// across queue interleavings and sessions, cooperative cancel, crash-sim
// halt + restart recovery (resume from the job's flow checkpoint), corrupt
// checkpoint fallback, and a fault-injection soak asserting no job is ever
// lost or left non-terminal.
#include "src/svc/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/svc/job.hpp"

namespace emi::svc {
namespace {

namespace fs = std::filesystem;

struct Guards {
  ~Guards() { core::FaultInjector::instance().disarm(); }
};

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  fs::remove_all(dir);
  return dir;
}

JobSpec quick_spec(const std::string& client = "t") {
  JobSpec spec;
  spec.topology = "buck";
  spec.sweep_points = 30;
  spec.client = client;
  return spec;
}

TEST(SvcService, LifecyclePersistsTerminalRecord) {
  const std::string dir = fresh_dir("svc_lifecycle");
  Service svc({dir, 1, 8});
  const core::Result<std::uint64_t> id = svc.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  const core::Result<JobRecord> rec = svc.wait(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_TRUE(rec.value().complete);
  EXPECT_NE(rec.value().fingerprint, 0u);

  // The terminal record survived to disk in the documented location.
  const core::Result<JobRecord> on_disk =
      load_job_record(svc.job_dir(id.value()) + "/job.state");
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk.value().state, JobState::kDone);
  EXPECT_EQ(on_disk.value().fingerprint, rec.value().fingerprint);
  // And the per-job flow checkpoint exists next to it.
  EXPECT_TRUE(fs::exists(svc.job_dir(id.value()) + "/flow.ckpt"));
}

TEST(SvcService, RejectsInvalidSpecsAndUnknownIds) {
  const std::string dir = fresh_dir("svc_invalid");
  Service svc({dir, 1, 8});
  JobSpec bad = quick_spec();
  bad.topology = "teapot";
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  bad = quick_spec();
  bad.sweep_points = 1;
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  bad = quick_spec();
  bad.stop_after_stage = "frobnication";
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.status(99).status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.cancel(99).code(), core::ErrorCode::kInvalidArgument);
  // Nothing invalid left a directory behind.
  EXPECT_EQ(svc.stats().submitted, 0u);
}

// The tentpole determinism contract: identical specs submitted to any mix of
// sessions, against any executor count, come back with identical
// fingerprints - queue interleaving and cache sharing never change bits.
TEST(SvcService, IdenticalJobsBitIdenticalAcrossInterleavings) {
  std::uint64_t serial_fp = 0;
  {
    Service svc({fresh_dir("svc_serial"), 1, 16});
    const auto id = svc.submit(quick_spec("solo"));
    ASSERT_TRUE(id.ok());
    const auto rec = svc.wait(id.value());
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(rec.value().state, JobState::kDone);
    serial_fp = rec.value().fingerprint;
  }

  Service svc({fresh_dir("svc_parallel"), 4, 16});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = svc.submit(quick_spec("client-" + std::to_string(i % 2)));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (const std::uint64_t id : ids) {
    const auto rec = svc.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kDone);
    EXPECT_EQ(rec.value().fingerprint, serial_fp);
  }
  EXPECT_GE(svc.stats().sessions, 2u);
}

TEST(SvcService, CancelQueuedJobNeverRuns) {
  const std::string dir = fresh_dir("svc_cancel");
  Service svc({dir, 1, 8});
  // Fill the single executor, then cancel a job stuck behind it.
  const auto running = svc.submit(quick_spec());
  const auto queued = svc.submit(quick_spec());
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(svc.cancel(queued.value()).ok());
  const auto rec = svc.wait(queued.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kCancelled);
  EXPECT_FALSE(rec.value().complete);
  // Cancelling a terminal job is an ok no-op.
  EXPECT_TRUE(svc.cancel(queued.value()).ok());
  // The job ahead of it is unaffected.
  EXPECT_EQ(svc.wait(running.value()).value().state, JobState::kDone);
}

// Crash-sim halt, then restart recovery: the stop_after hook halts the
// executor with the disk still saying `running` (the exact file state of a
// SIGKILL); a new service over the same state dir re-queues the job, resumes
// from its flow checkpoint, and the final fingerprint is bit-identical to an
// uninterrupted run's.
TEST(SvcService, CrashSimThenRestartResumesBitIdentical) {
  std::uint64_t reference_fp = 0;
  {
    Service svc({fresh_dir("svc_ref"), 1, 8});
    const auto id = svc.submit(quick_spec("crash"));
    ASSERT_TRUE(id.ok());
    reference_fp = svc.wait(id.value()).value().fingerprint;
  }

  const std::string dir = fresh_dir("svc_crash");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    JobSpec spec = quick_spec("crash");
    spec.stop_after_stage = "rule_derivation";
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    const auto rec = svc.wait(job_id);  // unblocks on the crash-sim halt
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kRunning);  // disk agrees
  }
  const auto on_disk = load_job_record(dir + "/job-" + std::to_string(job_id) +
                                       "/job.state");
  ASSERT_TRUE(on_disk.ok());
  ASSERT_EQ(on_disk.value().state, JobState::kRunning);

  Service restarted({dir, 1, 8});
  EXPECT_EQ(restarted.stats().recovered, 1u);
  const auto rec = restarted.wait(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_EQ(rec.value().fingerprint, reference_fp);
}

// A torn flow checkpoint must never poison recovery: the job falls back to a
// fresh deterministic rerun and still lands on the reference fingerprint.
TEST(SvcService, CorruptCheckpointFallsBackToFreshRerun) {
  std::uint64_t reference_fp = 0;
  {
    Service svc({fresh_dir("svc_ref2"), 1, 8});
    const auto id = svc.submit(quick_spec("torn"));
    ASSERT_TRUE(id.ok());
    reference_fp = svc.wait(id.value()).value().fingerprint;
  }

  const std::string dir = fresh_dir("svc_torn");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    JobSpec spec = quick_spec("torn");
    spec.stop_after_stage = "sensitivity";
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    (void)svc.wait(job_id);
  }
  // Tear the checkpoint the way a mid-write kill would.
  const std::string ckpt = dir + "/job-" + std::to_string(job_id) + "/flow.ckpt";
  std::ofstream out(ckpt, std::ios::trunc);
  out << "EMICKPT 1 0000000000000000\ngarbage\n";
  out.close();

  Service restarted({dir, 1, 8});
  const auto rec = restarted.wait(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_EQ(rec.value().fingerprint, reference_fp);
}

// A job.state file damaged outside the atomic-write protocol is surfaced as
// a failed-but-visible job, never silently dropped and never re-run.
TEST(SvcService, CorruptJobStateSurfacesAsFailed) {
  const std::string dir = fresh_dir("svc_badstate");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    const auto id = svc.submit(quick_spec());
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    (void)svc.wait(job_id);
  }
  std::ofstream out(dir + "/job-" + std::to_string(job_id) + "/job.state",
                    std::ios::trunc);
  out << "EMIJOB 1\nkv state done\n";  // no checksum line
  out.close();

  Service restarted({dir, 1, 8});
  const auto rec = restarted.status(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kFailed);
  EXPECT_FALSE(rec.value().detail.empty());
  // New submissions keep allocating past the damaged id.
  const auto id2 = restarted.submit(quick_spec());
  ASSERT_TRUE(id2.ok());
  EXPECT_GT(id2.value(), job_id);
}

// Soak: every injection site the flow owns (pool/cache/lu/io/ckpt) firing at
// once. Jobs may fail - that is the taxonomy working - but every job must
// reach a terminal state, keep its record queryable, and none may vanish.
TEST(SvcService, FaultInjectionSoakLosesNoJobs) {
  Guards guards;
  ASSERT_TRUE(core::FaultInjector::instance().configure_from_spec(
      "pool:0.05:7,cache:0.05:9,lu:0.05:11,io:0.02:13,ckpt:0.1:17"));
  const std::string dir = fresh_dir("svc_soak");
  constexpr int kJobs = 6;
  std::vector<std::uint64_t> ids;
  {
    Service svc({dir, 2, 16});
    for (int i = 0; i < kJobs; ++i) {
      const auto id = svc.submit(quick_spec("soak-" + std::to_string(i % 3)));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (const std::uint64_t id : ids) {
      const auto rec = svc.wait(id);
      ASSERT_TRUE(rec.ok());
      EXPECT_TRUE(job_state_terminal(rec.value().state))
          << "job " << id << " left non-terminal";
    }
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(s.queued + s.running, 0u);
    EXPECT_EQ(s.done + s.failed + s.cancelled,
              static_cast<std::uint64_t>(kJobs));
  }
  core::FaultInjector::instance().disarm();

  // Restart with the injector disarmed: no terminal job reruns, nothing is
  // re-queued, every record is still queryable.
  Service restarted({dir, 1, 16});
  const ServiceStats s = restarted.stats();
  EXPECT_EQ(s.recovered, static_cast<std::uint64_t>(kJobs));
  // Every id is still queryable - no job vanished. Any job whose terminal
  // write was eaten by an io fault re-queues and finishes now.
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(restarted.status(id).ok()) << "job " << id << " lost";
  }
  for (const std::uint64_t id : ids) {
    const auto rec = restarted.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(job_state_terminal(rec.value().state));
  }
}

// --- overload hardening -----------------------------------------------------

// Admission sheds a submission against a full queue with kResourceExhausted
// and a parseable retry_after_ms token in the message. Deterministic setup:
// one executor pinned on job 1, one job filling the capacity-1 queue.
TEST(SvcService, FullQueueSubmissionShedWithRetryAfterHint) {
  Service svc({fresh_dir("svc_shed"), 1, 1});
  const auto running = svc.submit(quick_spec());
  ASSERT_TRUE(running.ok());
  // Wait until the executor owns job 1, so the queue is deterministically
  // empty before the filler goes in.
  while (svc.status(running.value()).value().state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto queued = svc.submit(quick_spec());
  ASSERT_TRUE(queued.ok());

  const auto shed = svc.submit(quick_spec());
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::ErrorCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("queue full"), std::string::npos)
      << shed.status().message();
  EXPECT_NE(shed.status().message().find(" retry_after_ms="), std::string::npos)
      << shed.status().message();
  EXPECT_EQ(svc.health().shed, 1u);
  // The shed submission left no job behind; the admitted ones finish.
  EXPECT_EQ(svc.stats().submitted, 2u);
  EXPECT_EQ(svc.wait(running.value()).value().state, JobState::kDone);
  EXPECT_EQ(svc.wait(queued.value()).value().state, JobState::kDone);
}

// With latency evidence in the EWMA, a budget the projection cannot meet is
// shed before any durable work happens.
TEST(SvcService, UnmeetableBudgetShedOnceEvidenceExists) {
  Service svc({fresh_dir("svc_deadline_shed"), 1, 8});
  // Budgetless warm-up job: feeds the admission EWMA (jobs take >> 1 ms).
  const auto warm = svc.submit(quick_spec());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(svc.wait(warm.value()).value().state, JobState::kDone);
  ASSERT_GT(svc.health().ewma_job_ms, 1.0);

  JobSpec doomed = quick_spec();
  doomed.total_budget_ms = 1;
  const auto shed = svc.submit(doomed);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), core::ErrorCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("deadline unmeetable"), std::string::npos)
      << shed.status().message();
  EXPECT_NE(shed.status().message().find(" retry_after_ms="), std::string::npos);
  // A generous budget sails through.
  JobSpec fine = quick_spec();
  fine.total_budget_ms = 600000;
  const auto ok = svc.submit(fine);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(job_state_terminal(svc.wait(ok.value()).value().state));
}

// The hung-job watchdog end to end: an injected wedge (no heartbeats, no
// poll points) must be detected by lease expiry, durably marked `stalled`,
// unwedged via the CancelToken, requeued, and the retry - which re-rolls the
// wedge key - must land on the bit-identical reference fingerprint.
// wedge:0.5:3 wedges job id 1 on attempt 1 only (attempts 2+ run clean).
TEST(SvcService, WedgedJobStalledRequeuedAndBitIdentical) {
  std::uint64_t reference_fp = 0;
  {
    Service svc({fresh_dir("svc_wedge_ref"), 1, 8});
    const auto id = svc.submit(quick_spec("wedge"));
    ASSERT_TRUE(id.ok());
    reference_fp = svc.wait(id.value()).value().fingerprint;
  }

  Guards guards;
  ASSERT_TRUE(core::FaultInjector::instance().configure_from_spec("wedge:0.5:3"));
  // The lease must be generous enough that only the wedge (an *infinite*
  // hang) ever trips it: a clean attempt's longest stage runs well under a
  // second even on a loaded single-core sanitizer build, so 1500 ms keeps
  // legitimate work from stalling while detection stays ~lease + tick.
  Service svc(
      {fresh_dir("svc_wedge"), 1, 8, /*lease_ms=*/1500, /*max_attempts=*/3});
  const auto id = svc.submit(quick_spec("wedge"));
  ASSERT_TRUE(id.ok());
  const auto rec = svc.wait(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  // Attempt 1 wedges; attempt 2 finishes - unless the machine is loaded
  // enough that a legitimately-running attempt also overruns the lease, in
  // which case the watchdog correctly stalls it too and a later attempt
  // completes. Any count in [2, max] is correct behavior; what must NEVER
  // vary is the result bits.
  EXPECT_GE(rec.value().attempts, 2u);
  EXPECT_LE(rec.value().attempts, 3u);
  EXPECT_EQ(rec.value().fingerprint, reference_fp);
  const ServiceHealth h = svc.health();
  EXPECT_GE(h.stall_events, 1u);
  EXPECT_EQ(h.stalled, 0u);  // nothing left stuck
}

// A job that wedges on every attempt burns max_attempts and fails terminally
// with the stall history in its detail. wedge:0.9:1 wedges job 1 on attempts
// 1, 2 and 3.
TEST(SvcService, PersistentWedgeFailsAfterMaxAttempts) {
  Guards guards;
  ASSERT_TRUE(core::FaultInjector::instance().configure_from_spec("wedge:0.9:1"));
  Service svc({fresh_dir("svc_wedge_burn"), 1, 8, /*lease_ms=*/60,
               /*max_attempts=*/2});
  const auto id = svc.submit(quick_spec("burn"));
  ASSERT_TRUE(id.ok());
  const auto rec = svc.wait(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kFailed);
  EXPECT_FALSE(rec.value().complete);
  EXPECT_EQ(rec.value().attempts, 2u);
  EXPECT_NE(rec.value().detail.find("stalled after 2 attempts"), std::string::npos)
      << rec.value().detail;
  // The failure is durable and recovery does NOT resurrect it.
  Service restarted({svc.state_dir(), 1, 8});
  EXPECT_EQ(restarted.status(id.value()).value().state, JobState::kFailed);
}

// Poison-job quarantine: a job that takes the process down on every attempt
// (poison keeps the crash-sim hook armed across recoveries) accumulates
// persisted attempts and is quarantined - terminal, queryable, never run
// again - once recovery sees max_attempts burned.
TEST(SvcService, PoisonJobQuarantinedAfterRepeatedCrashes) {
  const std::string dir = fresh_dir("svc_poison");
  JobSpec spec = quick_spec("poison");
  spec.stop_after_stage = "sensitivity";
  spec.poison = true;
  // Poison without a crash-sim stage is rejected up front.
  {
    JobSpec bad = quick_spec();
    bad.poison = true;
    Service svc({fresh_dir("svc_poison_bad"), 1, 8});
    EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  }

  std::uint64_t job_id = 0;
  {  // Process 1: attempt 1 "crashes" (disk: running, attempts=1).
    Service svc({dir, 1, 8, /*lease_ms=*/0, /*max_attempts=*/2});
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    (void)svc.wait(job_id);
  }
  {  // Process 2: recovery requeues (attempts=1 < 2); poison crashes again.
    Service svc({dir, 1, 8, /*lease_ms=*/0, /*max_attempts=*/2});
    (void)svc.wait(job_id);
    const auto on_disk = load_job_record(dir + "/job-" + std::to_string(job_id) +
                                         "/job.state");
    ASSERT_TRUE(on_disk.ok());
    EXPECT_EQ(on_disk.value().attempts, 2u);  // evidence persisted pre-crash
  }
  // Process 3: attempts=2 >= max_attempts=2 -> quarantined, not replayed.
  Service svc({dir, 1, 8, /*lease_ms=*/0, /*max_attempts=*/2});
  const auto rec = svc.status(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kQuarantined);
  EXPECT_TRUE(job_state_terminal(rec.value().state));
  EXPECT_NE(rec.value().detail.find("quarantined after 2 attempts"),
            std::string::npos)
      << rec.value().detail;
  EXPECT_EQ(svc.stats().quarantined, 1u);
  EXPECT_EQ(svc.health().quarantined, 1u);
  // wait() on a quarantined job returns immediately (it is terminal)...
  EXPECT_EQ(svc.wait(job_id).value().state, JobState::kQuarantined);
  // ...and the service still takes new work.
  const auto next = svc.submit(quick_spec());
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(svc.wait(next.value()).value().state, JobState::kDone);
}

// Graceful drain: admissions stop, in-flight jobs finish, the queued backlog
// stays durable in `queued` state, and a restart loses nothing - every job
// eventually lands done with identical fingerprints.
TEST(SvcService, DrainFinishesInFlightKeepsBacklogDurable) {
  const std::string dir = fresh_dir("svc_drain");
  std::vector<std::uint64_t> ids;
  {
    Service svc({dir, 1, 16});
    for (int i = 0; i < 4; ++i) {
      const auto id = svc.submit(quick_spec("drain"));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    EXPECT_FALSE(svc.draining());
    // Drain with job 1 deterministically in flight, so at least one job
    // lands done in this process and the rest stay queued.
    while (svc.status(ids[0]).value().state == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    svc.begin_drain();
    EXPECT_TRUE(svc.draining());
    EXPECT_TRUE(svc.health().draining);
    // Submissions are refused while draining - a state the operator chose,
    // not an overload, hence failed_precondition rather than shed.
    const auto refused = svc.submit(quick_spec());
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), core::ErrorCode::kFailedPrecondition);
    EXPECT_NE(refused.status().message().find("draining"), std::string::npos);

    while (!svc.drain_complete()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // The executor only had time for a prefix of the backlog; the rest is
    // still queued (jobs take tens of ms, the four submits took microseconds).
    const ServiceStats s = svc.stats();
    EXPECT_GE(s.done, 1u);
    EXPECT_GE(s.queued, 1u);
    EXPECT_EQ(s.running, 0u);
  }
  // Restart: the queued backlog recovers and everything reaches done with
  // one common fingerprint (identical specs -> identical bits).
  Service restarted({dir, 2, 16});
  EXPECT_EQ(restarted.stats().recovered, 4u);
  std::uint64_t fp = 0;
  for (const std::uint64_t id : ids) {
    const auto rec = restarted.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kDone) << "job " << id;
    if (fp == 0) fp = rec.value().fingerprint;
    EXPECT_EQ(rec.value().fingerprint, fp);
  }
}

// HEALTH snapshot basics: cold values, then live values after one job.
TEST(SvcService, HealthSnapshotReflectsLoad) {
  Service svc({fresh_dir("svc_health"), 2, 8});
  ServiceHealth h = svc.health();
  EXPECT_EQ(h.queue_depth, 0u);
  EXPECT_EQ(h.queue_capacity, 8u);
  EXPECT_EQ(h.executors, 2u);
  EXPECT_EQ(h.ewma_job_ms, 0.0);
  EXPECT_GE(h.retry_after_ms, 1);  // cold hint still tells clients to pace
  EXPECT_FALSE(h.draining);

  const auto id = svc.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(svc.wait(id.value()).value().state, JobState::kDone);
  h = svc.health();
  EXPECT_GT(h.ewma_job_ms, 0.0);
  EXPECT_EQ(h.running, 0u);
  EXPECT_EQ(h.shed, 0u);
}

}  // namespace
}  // namespace emi::svc
