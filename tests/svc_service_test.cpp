// The job service end to end: lifecycle persistence, bit-identical results
// across queue interleavings and sessions, cooperative cancel, crash-sim
// halt + restart recovery (resume from the job's flow checkpoint), corrupt
// checkpoint fallback, and a fault-injection soak asserting no job is ever
// lost or left non-terminal.
#include "src/svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/svc/job.hpp"

namespace emi::svc {
namespace {

namespace fs = std::filesystem;

struct Guards {
  ~Guards() { core::FaultInjector::instance().disarm(); }
};

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  fs::remove_all(dir);
  return dir;
}

JobSpec quick_spec(const std::string& client = "t") {
  JobSpec spec;
  spec.topology = "buck";
  spec.sweep_points = 30;
  spec.client = client;
  return spec;
}

TEST(SvcService, LifecyclePersistsTerminalRecord) {
  const std::string dir = fresh_dir("svc_lifecycle");
  Service svc({dir, 1, 8});
  const core::Result<std::uint64_t> id = svc.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  const core::Result<JobRecord> rec = svc.wait(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_TRUE(rec.value().complete);
  EXPECT_NE(rec.value().fingerprint, 0u);

  // The terminal record survived to disk in the documented location.
  const core::Result<JobRecord> on_disk =
      load_job_record(svc.job_dir(id.value()) + "/job.state");
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk.value().state, JobState::kDone);
  EXPECT_EQ(on_disk.value().fingerprint, rec.value().fingerprint);
  // And the per-job flow checkpoint exists next to it.
  EXPECT_TRUE(fs::exists(svc.job_dir(id.value()) + "/flow.ckpt"));
}

TEST(SvcService, RejectsInvalidSpecsAndUnknownIds) {
  const std::string dir = fresh_dir("svc_invalid");
  Service svc({dir, 1, 8});
  JobSpec bad = quick_spec();
  bad.topology = "teapot";
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  bad = quick_spec();
  bad.sweep_points = 1;
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  bad = quick_spec();
  bad.stop_after_stage = "frobnication";
  EXPECT_EQ(svc.submit(bad).status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.status(99).status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.cancel(99).code(), core::ErrorCode::kInvalidArgument);
  // Nothing invalid left a directory behind.
  EXPECT_EQ(svc.stats().submitted, 0u);
}

// The tentpole determinism contract: identical specs submitted to any mix of
// sessions, against any executor count, come back with identical
// fingerprints - queue interleaving and cache sharing never change bits.
TEST(SvcService, IdenticalJobsBitIdenticalAcrossInterleavings) {
  std::uint64_t serial_fp = 0;
  {
    Service svc({fresh_dir("svc_serial"), 1, 16});
    const auto id = svc.submit(quick_spec("solo"));
    ASSERT_TRUE(id.ok());
    const auto rec = svc.wait(id.value());
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(rec.value().state, JobState::kDone);
    serial_fp = rec.value().fingerprint;
  }

  Service svc({fresh_dir("svc_parallel"), 4, 16});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = svc.submit(quick_spec("client-" + std::to_string(i % 2)));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (const std::uint64_t id : ids) {
    const auto rec = svc.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kDone);
    EXPECT_EQ(rec.value().fingerprint, serial_fp);
  }
  EXPECT_GE(svc.stats().sessions, 2u);
}

TEST(SvcService, CancelQueuedJobNeverRuns) {
  const std::string dir = fresh_dir("svc_cancel");
  Service svc({dir, 1, 8});
  // Fill the single executor, then cancel a job stuck behind it.
  const auto running = svc.submit(quick_spec());
  const auto queued = svc.submit(quick_spec());
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(svc.cancel(queued.value()).ok());
  const auto rec = svc.wait(queued.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kCancelled);
  EXPECT_FALSE(rec.value().complete);
  // Cancelling a terminal job is an ok no-op.
  EXPECT_TRUE(svc.cancel(queued.value()).ok());
  // The job ahead of it is unaffected.
  EXPECT_EQ(svc.wait(running.value()).value().state, JobState::kDone);
}

// Crash-sim halt, then restart recovery: the stop_after hook halts the
// executor with the disk still saying `running` (the exact file state of a
// SIGKILL); a new service over the same state dir re-queues the job, resumes
// from its flow checkpoint, and the final fingerprint is bit-identical to an
// uninterrupted run's.
TEST(SvcService, CrashSimThenRestartResumesBitIdentical) {
  std::uint64_t reference_fp = 0;
  {
    Service svc({fresh_dir("svc_ref"), 1, 8});
    const auto id = svc.submit(quick_spec("crash"));
    ASSERT_TRUE(id.ok());
    reference_fp = svc.wait(id.value()).value().fingerprint;
  }

  const std::string dir = fresh_dir("svc_crash");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    JobSpec spec = quick_spec("crash");
    spec.stop_after_stage = "rule_derivation";
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    const auto rec = svc.wait(job_id);  // unblocks on the crash-sim halt
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, JobState::kRunning);  // disk agrees
  }
  const auto on_disk = load_job_record(dir + "/job-" + std::to_string(job_id) +
                                       "/job.state");
  ASSERT_TRUE(on_disk.ok());
  ASSERT_EQ(on_disk.value().state, JobState::kRunning);

  Service restarted({dir, 1, 8});
  EXPECT_EQ(restarted.stats().recovered, 1u);
  const auto rec = restarted.wait(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_EQ(rec.value().fingerprint, reference_fp);
}

// A torn flow checkpoint must never poison recovery: the job falls back to a
// fresh deterministic rerun and still lands on the reference fingerprint.
TEST(SvcService, CorruptCheckpointFallsBackToFreshRerun) {
  std::uint64_t reference_fp = 0;
  {
    Service svc({fresh_dir("svc_ref2"), 1, 8});
    const auto id = svc.submit(quick_spec("torn"));
    ASSERT_TRUE(id.ok());
    reference_fp = svc.wait(id.value()).value().fingerprint;
  }

  const std::string dir = fresh_dir("svc_torn");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    JobSpec spec = quick_spec("torn");
    spec.stop_after_stage = "sensitivity";
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    (void)svc.wait(job_id);
  }
  // Tear the checkpoint the way a mid-write kill would.
  const std::string ckpt = dir + "/job-" + std::to_string(job_id) + "/flow.ckpt";
  std::ofstream out(ckpt, std::ios::trunc);
  out << "EMICKPT 1 0000000000000000\ngarbage\n";
  out.close();

  Service restarted({dir, 1, 8});
  const auto rec = restarted.wait(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kDone);
  EXPECT_EQ(rec.value().fingerprint, reference_fp);
}

// A job.state file damaged outside the atomic-write protocol is surfaced as
// a failed-but-visible job, never silently dropped and never re-run.
TEST(SvcService, CorruptJobStateSurfacesAsFailed) {
  const std::string dir = fresh_dir("svc_badstate");
  std::uint64_t job_id = 0;
  {
    Service svc({dir, 1, 8});
    const auto id = svc.submit(quick_spec());
    ASSERT_TRUE(id.ok());
    job_id = id.value();
    (void)svc.wait(job_id);
  }
  std::ofstream out(dir + "/job-" + std::to_string(job_id) + "/job.state",
                    std::ios::trunc);
  out << "EMIJOB 1\nkv state done\n";  // no checksum line
  out.close();

  Service restarted({dir, 1, 8});
  const auto rec = restarted.status(job_id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().state, JobState::kFailed);
  EXPECT_FALSE(rec.value().detail.empty());
  // New submissions keep allocating past the damaged id.
  const auto id2 = restarted.submit(quick_spec());
  ASSERT_TRUE(id2.ok());
  EXPECT_GT(id2.value(), job_id);
}

// Soak: every injection site the flow owns (pool/cache/lu/io/ckpt) firing at
// once. Jobs may fail - that is the taxonomy working - but every job must
// reach a terminal state, keep its record queryable, and none may vanish.
TEST(SvcService, FaultInjectionSoakLosesNoJobs) {
  Guards guards;
  ASSERT_TRUE(core::FaultInjector::instance().configure_from_spec(
      "pool:0.05:7,cache:0.05:9,lu:0.05:11,io:0.02:13,ckpt:0.1:17"));
  const std::string dir = fresh_dir("svc_soak");
  constexpr int kJobs = 6;
  std::vector<std::uint64_t> ids;
  {
    Service svc({dir, 2, 16});
    for (int i = 0; i < kJobs; ++i) {
      const auto id = svc.submit(quick_spec("soak-" + std::to_string(i % 3)));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (const std::uint64_t id : ids) {
      const auto rec = svc.wait(id);
      ASSERT_TRUE(rec.ok());
      EXPECT_TRUE(job_state_terminal(rec.value().state))
          << "job " << id << " left non-terminal";
    }
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(s.queued + s.running, 0u);
    EXPECT_EQ(s.done + s.failed + s.cancelled,
              static_cast<std::uint64_t>(kJobs));
  }
  core::FaultInjector::instance().disarm();

  // Restart with the injector disarmed: no terminal job reruns, nothing is
  // re-queued, every record is still queryable.
  Service restarted({dir, 1, 16});
  const ServiceStats s = restarted.stats();
  EXPECT_EQ(s.recovered, static_cast<std::uint64_t>(kJobs));
  // Every id is still queryable - no job vanished. Any job whose terminal
  // write was eaten by an io fault re-queues and finishes now.
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(restarted.status(id).ok()) << "job " << id << " lost";
  }
  for (const std::uint64_t id : ids) {
    const auto rec = restarted.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(job_state_terminal(rec.value().state));
  }
}

}  // namespace
}  // namespace emi::svc
