// Accuracy battery for the sampled pair kernel (sampled_path.hpp): the
// exact path must reproduce the legacy nested quadrature bit for bit across
// geometry and quadrature sweeps, and the gated fast paths must stay inside
// the relative-error bounds documented on KernelOptions, measured against
// the order-8 exact kernel.
#include "src/peec/sampled_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/thread_pool.hpp"
#include "src/peec/component_model.hpp"
#include "src/peec/partial_inductance.hpp"

namespace emi::peec {
namespace {

Segment make_segment(const Vec3& a, const Vec3& b, double radius = 0.25,
                     double weight = 1.0) {
  return Segment{a, b, radius, weight};
}

double rel_err(double got, double ref) {
  if (ref == 0.0) return std::fabs(got);
  return std::fabs((got - ref) / ref);
}

// The documented reference for the fast-path bounds: order-8 exact.
double exact_ref(const Segment& s1, const Segment& s2) {
  return mutual_neumann(s1, s2, QuadratureOptions{8, 2});
}

TEST(SampledKernel, ExactMatchesLegacyBitwiseAcrossGeometry) {
  // Distance x angle x lateral offset x quadrature sweep: every combination
  // must agree with the legacy nested kernel to the last bit.
  for (double dist : {3.0, 8.0, 20.0, 60.0}) {
    for (double ang_deg : {0.0, 15.0, 45.0, 75.0, 90.0}) {
      for (double off : {0.0, 4.0}) {
        const double c = std::cos(ang_deg * geom::kPi / 180.0);
        const double s = std::sin(ang_deg * geom::kPi / 180.0);
        const Segment s1 = make_segment({0, 0, 0}, {10, 0, 0}, 0.2, 1.0);
        const Segment s2 = make_segment({dist, off, 1.0},
                                        {dist + 12 * c, off + 12 * s, 1.0}, 0.3, 0.8);
        for (std::size_t order : {1u, 2u, 4u, 6u, 8u}) {
          for (std::size_t sub : {1u, 2u, 3u}) {
            const QuadratureOptions q{order, sub};
            SegmentPath p1, p2;
            p1.segments = {s1};
            p2.segments = {s2};
            const SampledPath a = sample_path(p1, q);
            const SampledPath b = sample_path(p2, q);
            const double ref = mutual_neumann(s1, s2, q);
            const double got = sampled_mutual_exact(a, 0, b, 0);
            EXPECT_EQ(ref, got) << "dist=" << dist << " ang=" << ang_deg
                                << " off=" << off << " order=" << order
                                << " sub=" << sub;
          }
        }
      }
    }
  }
}

TEST(SampledKernel, PathMutualMatchesLegacyBitwise) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{30.0, 4.0, 0.0}, 25.0});
  for (std::size_t order : {2u, 4u, 6u}) {
    const QuadratureOptions q{order, 2};
    EXPECT_EQ(path_mutual_legacy(pa, pb, q), path_mutual(pa, pb, q))
        << "order=" << order;
  }
}

TEST(SampledKernel, SerialAndParallelSchedulesAgreeBitwise) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{25.0, -3.0, 0.0}, 70.0});
  const QuadratureOptions q{4, 2};
  const double parallel = path_mutual(pa, pb, q);
  double serial;
  {
    core::ScopedSerialFallback fallback;
    serial = path_mutual(pa, pb, q);
  }
  EXPECT_EQ(parallel, serial);
}

TEST(SampledKernel, DefaultOptionsNeverTakeFastPaths) {
  // Far-apart parallel pair: prime fast-path territory, but with default
  // KernelOptions the sampled kernel must still return the exact bits and
  // classify the pair as exact.
  const Segment s1 = make_segment({0, 0, 0}, {10, 0, 0});
  const Segment s2 = make_segment({0, 200.0, 0}, {10, 200.0, 0});
  const QuadratureOptions q{4, 2};
  SegmentPath p1, p2;
  p1.segments = {s1};
  p2.segments = {s2};
  const SampledPath a = sample_path(p1, q);
  const SampledPath b = sample_path(p2, q);

  const double ref = sampled_mutual_exact(a, 0, b, 0);
  const KernelStats before = kernel_stats();
  const double got = sampled_mutual(a, 0, b, 0, KernelOptions{});
  const KernelStats after = kernel_stats();
  EXPECT_EQ(got, ref);
  EXPECT_EQ(after.exact_pairs - before.exact_pairs, 1u);
  EXPECT_EQ(after.analytic_pairs, before.analytic_pairs);
  EXPECT_EQ(after.far_field_pairs, before.far_field_pairs);
}

TEST(SampledKernel, AnalyticParallelWithinDocumentedBound) {
  // Offset-parallel pairs across lateral separation and axial offset. The
  // documented bound: better than 1e-3 at the tightest admitted geometry
  // (lateral = 0.25 * max length), better than 1e-8 once lateral reaches the
  // segment length.
  KernelOptions kopt;
  kopt.analytic_parallel = true;
  const double l1 = 10.0, l2 = 7.0;
  const QuadratureOptions q{4, 2};
  std::size_t analytic_hits = 0;
  for (double lateral : {2.5, 5.0, 10.0, 20.0}) {
    for (double offset : {0.0, 4.0, 12.0}) {
      const Segment s1 = make_segment({0, 0, 0}, {l1, 0, 0}, 0.1);
      const Segment s2 = make_segment({offset, lateral, 0},
                                      {offset + l2, lateral, 0}, 0.1);
      SegmentPath p1, p2;
      p1.segments = {s1};
      p2.segments = {s2};
      const SampledPath a = sample_path(p1, q);
      const SampledPath b = sample_path(p2, q);

      const KernelStats before = kernel_stats();
      const double got = sampled_mutual(a, 0, b, 0, kopt);
      const KernelStats after = kernel_stats();
      if (after.analytic_pairs == before.analytic_pairs) continue;  // gated out
      ++analytic_hits;
      const double ref = exact_ref(s1, s2);
      const double bound = lateral >= l1 ? 1e-8 : 1e-3;
      EXPECT_LT(rel_err(got, ref), bound)
          << "lateral=" << lateral << " offset=" << offset;
    }
  }
  // The gate must actually admit the configurations the bound speaks about.
  EXPECT_GE(analytic_hits, 8u);
}

TEST(SampledKernel, FarFieldWithinDocumentedBound) {
  // Relative error below 1.5 / ratio^2 for every admitted pair, at the
  // default ratio and a stricter one.
  const double l1 = 10.0, l2 = 8.0;
  const QuadratureOptions q{4, 2};
  for (double ratio : {8.0, 16.0}) {
    KernelOptions kopt;
    kopt.far_field = true;
    kopt.far_field_ratio = ratio;
    std::size_t far_hits = 0;
    for (double dist : {90.0, 130.0, 170.0, 250.0}) {
      for (double ang_deg : {0.0, 30.0, 60.0}) {
        const double c = std::cos(ang_deg * geom::kPi / 180.0);
        const double s = std::sin(ang_deg * geom::kPi / 180.0);
        const Segment s1 = make_segment({0, 0, 0}, {l1, 0, 0}, 0.1);
        const Segment s2 = make_segment({dist, 2.0, 0.0},
                                        {dist + l2 * c, 2.0 + l2 * s, 0.0}, 0.1);
        SegmentPath p1, p2;
        p1.segments = {s1};
        p2.segments = {s2};
        const SampledPath a = sample_path(p1, q);
        const SampledPath b = sample_path(p2, q);

        const KernelStats before = kernel_stats();
        const double got = sampled_mutual(a, 0, b, 0, kopt);
        const KernelStats after = kernel_stats();
        if (after.far_field_pairs == before.far_field_pairs) continue;
        ++far_hits;
        EXPECT_LT(rel_err(got, exact_ref(s1, s2)), 1.5 / (ratio * ratio))
            << "ratio=" << ratio << " dist=" << dist << " ang=" << ang_deg;
      }
    }
    EXPECT_GE(far_hits, 6u);
  }
}

TEST(SampledKernel, PathInductanceUnchangedBySampling) {
  // path_inductance runs on the sampled kernel too; it must match the
  // legacy double sum term by term.
  const ComponentFieldModel m = bobbin_coil("L");
  const SegmentPath p = m.path_at({});
  const QuadratureOptions q{4, 2};
  double ref = 0.0;
  const auto& segs = p.segments;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    double row = segs[i].weight * segs[i].weight * self_inductance(segs[i]);
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      row += 2.0 * segs[i].weight * segs[j].weight * mutual_neumann(segs[i], segs[j], q);
    }
    ref += row;
  }
  EXPECT_EQ(ref, path_inductance(p, q));
}

TEST(SampledKernel, ZeroLengthAndPerpendicularSegments) {
  const QuadratureOptions q{4, 2};
  // Perpendicular pair: essentially zero, and still bit-identical to legacy.
  const Segment s1 = make_segment({0, 0, 0}, {10, 0, 0});
  const Segment s2 = make_segment({5, 5, 0}, {5, 15, 0});
  SegmentPath p1, p2;
  p1.segments = {s1};
  p2.segments = {s2};
  SampledPath a = sample_path(p1, q);
  SampledPath b = sample_path(p2, q);
  EXPECT_EQ(mutual_neumann(s1, s2, q), sampled_mutual_exact(a, 0, b, 0));
  EXPECT_NEAR(sampled_mutual_exact(a, 0, b, 0), 0.0, 1e-15);

  // A zero-length segment contributes exactly zero through every gate.
  const Segment zero = make_segment({3, 3, 3}, {3, 3, 3});
  SegmentPath pz;
  pz.segments = {zero};
  const SampledPath z = sample_path(pz, q);
  EXPECT_EQ(0.0, sampled_mutual_exact(z, 0, b, 0));
  KernelOptions fast;
  fast.analytic_parallel = true;
  fast.far_field = true;
  EXPECT_EQ(0.0, sampled_mutual(z, 0, b, 0, fast));
}

TEST(SampledKernel, SampledPathLayoutInvariants) {
  const ComponentFieldModel m = bobbin_coil("L");
  const SegmentPath p = m.path_at(Pose{{12.0, -5.0, 0.0}, 40.0});
  const QuadratureOptions q{6, 2};
  const SampledPath sp = sample_path(p, q);
  ASSERT_EQ(sp.segment_count(), p.segments.size());
  EXPECT_EQ(sp.order, q.order);
  EXPECT_EQ(sp.n_sub, q.subdivisions);
  EXPECT_EQ(sp.samples_per_segment(), q.order * q.subdivisions);
  EXPECT_EQ(sp.px.size(), sp.segment_count() * sp.samples_per_segment());
  EXPECT_EQ(sp.half.size(), sp.segment_count() * sp.n_sub);
  for (std::size_t i = 0; i < sp.segment_count(); ++i) {
    EXPECT_EQ(sp.wgt[i], p.segments[i].weight);
  }
}

}  // namespace
}  // namespace emi::peec
