#include "src/place/design.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emi::place {
namespace {

Design two_comp_design() {
  Design d;
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 60}))});
  Component a;
  a.name = "A";
  a.width_mm = 10;
  a.depth_mm = 4;
  a.height_mm = 5;
  a.axis_deg = 90.0;
  Component b = a;
  b.name = "B";
  d.add_component(std::move(a));
  d.add_component(std::move(b));
  return d;
}

TEST(Design, ComponentLookup) {
  Design d = two_comp_design();
  EXPECT_EQ(d.component_index("A"), 0u);
  EXPECT_EQ(d.component_index("B"), 1u);
  EXPECT_THROW(d.component_index("Z"), std::invalid_argument);
  EXPECT_FALSE(d.find_component("Z").has_value());
  EXPECT_EQ(*d.find_component("B"), 1u);
}

TEST(Design, Validation) {
  Design d;
  Component bad;
  bad.name = "";
  EXPECT_THROW(d.add_component(bad), std::invalid_argument);
  bad.name = "X";
  bad.width_mm = -1.0;
  EXPECT_THROW(d.add_component(bad), std::invalid_argument);
  Component ok;
  ok.name = "X";
  d.add_component(ok);
  EXPECT_THROW(d.add_component(ok), std::invalid_argument);  // duplicate
  Area a;
  a.name = "bad";
  EXPECT_THROW(d.add_area(a), std::invalid_argument);  // invalid polygon
  EXPECT_THROW(d.add_net({"n", {{"nope", ""}}, 10.0}), std::invalid_argument);
}

TEST(Design, EmptyAllowedRotationsDefaulted) {
  Design d;
  Component c;
  c.name = "X";
  c.allowed_rotations.clear();
  d.add_component(c);
  EXPECT_EQ(d.components()[0].allowed_rotations.size(), 4u);
}

TEST(Design, PemdLookupIsSymmetric) {
  Design d = two_comp_design();
  d.add_emd_rule("A", "B", Millimeters{17.5});
  EXPECT_DOUBLE_EQ(d.pemd(0, 1).raw(), 17.5);
  EXPECT_DOUBLE_EQ(d.pemd(1, 0).raw(), 17.5);
  EXPECT_DOUBLE_EQ(d.pemd(0, 0).raw(), 0.0);
  EXPECT_THROW(d.add_emd_rule("A", "A", Millimeters{5.0}), std::invalid_argument);
  EXPECT_THROW(d.add_emd_rule("A", "B", Millimeters{-1.0}), std::invalid_argument);
}

TEST(Design, FootprintRespectsRotation) {
  Design d = two_comp_design();
  Placement p{{50, 30}, 90.0, 0, true};
  const geom::Rect fp = d.footprint(0, p);
  EXPECT_NEAR(fp.width(), 4.0, 1e-12);
  EXPECT_NEAR(fp.height(), 10.0, 1e-12);
  EXPECT_EQ(fp.center(), (geom::Vec2{50, 30}));
}

TEST(Design, AxisFollowsRotation) {
  Design d = two_comp_design();
  Placement p{{0, 0}, 45.0, 0, true};
  EXPECT_DOUBLE_EQ(d.axis_deg(0, p), 135.0);
  p.rot_deg = 280.0;
  EXPECT_DOUBLE_EQ(d.axis_deg(0, p), 10.0);
}

TEST(Design, EffectiveEmdCosLaw) {
  Design d = two_comp_design();
  d.add_emd_rule("A", "B", Millimeters{20.0});
  const Placement pa{{0, 0}, 0.0, 0, true};
  Placement pb{{50, 0}, 0.0, 0, true};
  EXPECT_NEAR(d.effective_emd(0, pa, 1, pb).raw(), 20.0, 1e-12);  // parallel
  pb.rot_deg = 90.0;
  EXPECT_NEAR(d.effective_emd(0, pa, 1, pb).raw(), 0.0, 1e-12);   // perpendicular
  pb.rot_deg = 60.0;
  EXPECT_NEAR(d.effective_emd(0, pa, 1, pb).raw(), 10.0, 1e-12);  // cos(60)
  pb.rot_deg = 180.0;
  EXPECT_NEAR(d.effective_emd(0, pa, 1, pb).raw(), 20.0, 1e-12);  // same axis
}

TEST(Design, PinPositionsRotate) {
  Design d = two_comp_design();
  d.components()[0].pins.push_back({"1", {5.0, 0.0}});
  const Placement p{{10, 10}, 90.0, 0, true};
  const geom::Vec2 pin = d.pin_position(0, "1", p);
  EXPECT_NEAR(pin.x, 10.0, 1e-12);
  EXPECT_NEAR(pin.y, 15.0, 1e-12);
  // Unnamed pin = component center.
  EXPECT_EQ(d.pin_position(0, "", p), (geom::Vec2{10, 10}));
  EXPECT_THROW(d.pin_position(0, "nope", p), std::invalid_argument);
}

TEST(Design, AreasForHonorsAllowedAndPreferred) {
  Design d = two_comp_design();
  d.add_area({"aux", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {10, 10}))});
  d.add_area({"other_board", 1,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {10, 10}))});
  // Unrestricted: both board-0 areas, in definition order.
  auto areas = d.areas_for(0, 0);
  ASSERT_EQ(areas.size(), 2u);
  EXPECT_EQ(areas[0]->name, "board");
  // Restricted to aux.
  d.components()[0].allowed_areas = {"aux"};
  areas = d.areas_for(0, 0);
  ASSERT_EQ(areas.size(), 1u);
  EXPECT_EQ(areas[0]->name, "aux");
  // Preferred ordering puts the preferred area first.
  d.components()[1].preferred_areas = {"aux"};
  areas = d.areas_for(1, 0);
  ASSERT_EQ(areas.size(), 2u);
  EXPECT_EQ(areas[0]->name, "aux");
  // No areas on a non-existent board.
  EXPECT_TRUE(d.areas_for(0, 5).empty());
}

TEST(Design, GroupsInDefinitionOrder) {
  Design d;
  Component c;
  c.name = "1";
  c.group = "beta";
  d.add_component(c);
  c.name = "2";
  c.group = "alpha";
  d.add_component(c);
  c.name = "3";
  c.group = "beta";
  d.add_component(c);
  c.name = "4";
  c.group = "";
  d.add_component(c);
  const auto g = d.groups();
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], "beta");
  EXPECT_EQ(g[1], "alpha");
}

TEST(Layout, UnplacedFactory) {
  Design d = two_comp_design();
  const Layout l = Layout::unplaced(d);
  ASSERT_EQ(l.placements.size(), 2u);
  EXPECT_FALSE(l.placements[0].placed);
}

}  // namespace
}  // namespace emi::place
