// core::Backoff: the deterministic retry schedule. Two constructions with
// the same (options, seed) must replay byte-identical delays; distinct seeds
// must decorrelate; every delay must respect the jitter window
// [(1-jitter)*d_k, d_k] and the exponential cap.
#include "src/core/backoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace emi::core {
namespace {

TEST(Backoff, SameSeedReplaysIdenticalSchedule) {
  const BackoffOptions opt{100, 10000, 2.0, 0.5};
  const Backoff a(opt, 42), b(opt, 42);
  for (int k = 0; k < 12; ++k) EXPECT_EQ(a.delay_ms(k), b.delay_ms(k)) << "attempt " << k;
  // And repeated queries of the same attempt are stable (no hidden state).
  EXPECT_EQ(a.delay_ms(3), a.delay_ms(3));
}

TEST(Backoff, DistinctSeedsDecorrelate) {
  const BackoffOptions opt{100, 10000, 2.0, 0.5};
  const Backoff a(opt, 1), b(opt, 2);
  int differing = 0;
  for (int k = 0; k < 12; ++k) differing += a.delay_ms(k) != b.delay_ms(k) ? 1 : 0;
  // Jitter spans half of each delay; 12 coincidences would mean the seed is
  // not actually feeding the hash.
  EXPECT_GT(differing, 6);
}

TEST(Backoff, DelaysRespectJitterWindowAndCap) {
  const BackoffOptions opt{50, 800, 2.0, 0.5};
  const Backoff bo(opt, 7);
  for (int k = 0; k < 16; ++k) {
    // Nominal delay for attempt k: base * mult^k, clamped.
    double nominal = 50.0;
    for (int i = 0; i < k && nominal < 800.0; ++i) nominal *= 2.0;
    if (nominal > 800.0) nominal = 800.0;
    const std::int64_t d = bo.delay_ms(k);
    EXPECT_GE(d, static_cast<std::int64_t>(nominal * 0.5) - 1) << "attempt " << k;
    EXPECT_LE(d, static_cast<std::int64_t>(nominal)) << "attempt " << k;
  }
}

TEST(Backoff, ZeroJitterIsRegularExponential) {
  const Backoff bo({10, 1000, 2.0, 0.0}, 999);
  EXPECT_EQ(bo.delay_ms(0), 10);
  EXPECT_EQ(bo.delay_ms(1), 20);
  EXPECT_EQ(bo.delay_ms(2), 40);
  EXPECT_EQ(bo.delay_ms(7), 1000);   // clamped
  EXPECT_EQ(bo.delay_ms(30), 1000);  // stays clamped, no overflow blowup
}

TEST(Backoff, DegenerateOptionsAreSafe) {
  EXPECT_EQ(Backoff({0, 1000, 2.0, 0.5}, 3).delay_ms(4), 0);   // base 0: no delay
  EXPECT_EQ(Backoff({-5, 1000, 2.0, 0.5}, 3).delay_ms(4), 0);  // negative base
  // max <= 0 falls back to base (constant schedule modulo jitter).
  const Backoff flat({100, 0, 2.0, 0.0}, 3);
  EXPECT_EQ(flat.delay_ms(0), 100);
  EXPECT_EQ(flat.delay_ms(9), 100);
  // Out-of-range jitter is clamped, never produces a negative delay.
  const Backoff wild({100, 1000, 2.0, 5.0}, 11);
  for (int k = 0; k < 8; ++k) EXPECT_GE(wild.delay_ms(k), 0) << "attempt " << k;
}

}  // namespace
}  // namespace emi::core
