#include <gtest/gtest.h>

#include "src/place/drc.hpp"
#include "src/place/placer.hpp"
#include "src/place/refine.hpp"
#include "src/place/route.hpp"

namespace emi::place {
namespace {

Design routed_design() {
  Design d;
  d.set_clearance(Millimeters{1.0});
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 80}))});
  for (const char* name : {"A", "B", "C", "D"}) {
    Component c;
    c.name = name;
    c.width_mm = 10;
    c.depth_mm = 8;
    c.height_mm = 5;
    d.add_component(c);
  }
  d.add_net({"N1", {{"A", ""}, {"B", ""}}});
  d.add_net({"N2", {{"A", ""}, {"C", ""}, {"D", ""}}});
  return d;
}

Layout square_layout(const Design& d) {
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{20, 20}, 0.0, 0, true};
  l.placements[1] = {{60, 20}, 0.0, 0, true};
  l.placements[2] = {{20, 60}, 0.0, 0, true};
  l.placements[3] = {{60, 60}, 0.0, 0, true};
  return l;
}

TEST(Router, TwoPinNetIsManhattanShortest) {
  Design d = routed_design();
  Layout l = square_layout(d);
  const auto routed = route_nets(d, l);
  ASSERT_EQ(routed.size(), 2u);
  // N1: A(20,20) -> B(60,20): the star sits between them; total length
  // equals the Manhattan distance.
  EXPECT_NEAR(routed[0].total_length_mm, 40.0, 1e-9);
  for (const TraceSegment& s : routed[0].segments) {
    // Manhattan: every segment is axis-parallel.
    EXPECT_TRUE(std::abs(s.a.x - s.b.x) < 1e-9 || std::abs(s.a.y - s.b.y) < 1e-9);
  }
}

TEST(Router, StarNetLengthIsHpwlBound) {
  Design d = routed_design();
  Layout l = square_layout(d);
  const auto routed = route_nets(d, l);
  // N2 spans A(20,20), C(20,60), D(60,60): HPWL = 80; the Steiner star
  // route is at least that and at most twice.
  EXPECT_GE(routed[1].total_length_mm, 80.0 - 1e-9);
  EXPECT_LE(routed[1].total_length_mm, 160.0);
}

TEST(Router, SkipsIncompleteNets) {
  Design d = routed_design();
  Layout l = square_layout(d);
  l.placements[1].placed = false;  // B unplaced -> N1 unroutable
  const auto routed = route_nets(d, l);
  EXPECT_TRUE(routed[0].segments.empty());
  EXPECT_FALSE(routed[1].segments.empty());
}

TEST(Router, SkipsCrossBoardNets) {
  Design d = routed_design();
  d.set_board_count(2);
  Layout l = square_layout(d);
  l.placements[1].board = 1;
  const auto routed = route_nets(d, l);
  EXPECT_TRUE(routed[0].segments.empty());
}

TEST(Router, TotalLength) {
  Design d = routed_design();
  Layout l = square_layout(d);
  const auto routed = route_nets(d, l);
  EXPECT_NEAR(total_trace_length(routed),
              routed[0].total_length_mm + routed[1].total_length_mm, 1e-9);
}

TEST(Refine, ImprovesCostAndStaysLegal) {
  Design d = routed_design();
  // Scatter badly: nets stretched to opposite corners.
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  l.placements[1] = {{90, 70}, 0.0, 0, true};
  l.placements[2] = {{90, 10}, 0.0, 0, true};
  l.placements[3] = {{10, 70}, 0.0, 0, true};
  ASSERT_TRUE(DrcEngine(d).check(l).clean());

  RefineOptions opt;
  opt.iterations = 3000;
  opt.seed = 42;
  const RefineResult res = refine_layout(d, l, opt);
  EXPECT_LT(res.cost_after, res.cost_before);
  EXPECT_GT(res.improvement(), 0.2);
  EXPECT_GT(res.accepted, 0u);
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

TEST(Refine, DeterministicPerSeed) {
  Design d = routed_design();
  Layout l1 = square_layout(d);
  Layout l2 = square_layout(d);
  RefineOptions opt;
  opt.iterations = 500;
  refine_layout(d, l1, opt);
  refine_layout(d, l2, opt);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(l1.placements[i].position, l2.placements[i].position);
  }
}

TEST(Refine, HonorsEmdRules) {
  Design d = routed_design();
  d.add_emd_rule("A", "B", Millimeters{30.0});
  Layout l = square_layout(d);
  RefineOptions opt;
  opt.iterations = 2000;
  opt.seed = 3;
  refine_layout(d, l, opt);
  const DrcReport rep = DrcEngine(d).check(l);
  EXPECT_EQ(rep.count(ViolationKind::kEmd), 0u);
}

TEST(Refine, PreplacedNeverMoves) {
  Design d = routed_design();
  d.components()[0].preplaced = true;
  Layout l = square_layout(d);
  const geom::Vec2 fixed = l.placements[0].position;
  refine_layout(d, l);
  EXPECT_EQ(l.placements[0].position, fixed);
}

TEST(Refine, EmptyLayoutNoCrash) {
  Design d = routed_design();
  Layout l = Layout::unplaced(d);
  const RefineResult res = refine_layout(d, l);
  EXPECT_DOUBLE_EQ(res.cost_after, res.cost_before);
}

}  // namespace
}  // namespace emi::place
