// The deadline/cancellation layer's own tests: monotonic budgets, sticky
// tokens, latched stop reasons, scope nesting, and the parallel_for contract
// that a stopped scope skips whole chunks (never leaves one half-run).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/deadline.hpp"
#include "src/core/parallel.hpp"
#include "src/core/status.hpp"

namespace emi::core {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.has_expired());
  EXPECT_GT(d.remaining_ms(), 1000000);
  EXPECT_TRUE(Deadline::unlimited().is_unlimited());
}

TEST(Deadline, ExpiredIsAlreadyExpired) {
  const Deadline d = Deadline::expired();
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_TRUE(d.has_expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(Deadline, AfterMsNonPositiveExpiresImmediately) {
  EXPECT_TRUE(Deadline::after_ms(0).has_expired());
  EXPECT_TRUE(Deadline::after_ms(-5).has_expired());
  // A generous budget has not expired the instant it is created.
  const Deadline d = Deadline::after_ms(60000);
  EXPECT_FALSE(d.has_expired());
  EXPECT_GT(d.remaining_ms(), 0);
  EXPECT_LE(d.remaining_ms(), 60000);
}

TEST(Deadline, SoonerPicksTheTighterBudget) {
  const Deadline lim = Deadline::after_ms(60000);
  const Deadline unlim = Deadline::unlimited();
  EXPECT_FALSE(Deadline::sooner(unlim, unlim).has_expired());
  EXPECT_TRUE(Deadline::sooner(unlim, unlim).is_unlimited());
  EXPECT_FALSE(Deadline::sooner(lim, unlim).is_unlimited());
  EXPECT_FALSE(Deadline::sooner(unlim, lim).is_unlimited());
  EXPECT_TRUE(Deadline::sooner(lim, Deadline::expired()).has_expired());
  EXPECT_TRUE(Deadline::sooner(Deadline::expired(), unlim).has_expired());
}

TEST(CancelToken, StickyUntilReset) {
  CancelToken t;
  EXPECT_FALSE(t.cancel_requested());
  t.request_cancel();
  EXPECT_TRUE(t.cancel_requested());
  t.request_cancel();  // idempotent
  EXPECT_TRUE(t.cancel_requested());
  t.reset();
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancelScope, NoScopeMeansNoStops) {
  EXPECT_EQ(CancelScope::current(), nullptr);
  EXPECT_TRUE(CancelScope::poll());
  EXPECT_NO_THROW(CancelScope::check("test"));
}

TEST(CancelScope, UnlimitedScopeNeverStops) {
  CancelScope scope(Deadline::unlimited(), nullptr);
  EXPECT_EQ(CancelScope::current(), &scope);
  EXPECT_TRUE(CancelScope::poll());
  EXPECT_FALSE(scope.should_stop());
  EXPECT_EQ(scope.stop_reason(), CancelScope::Stop::kNone);
  EXPECT_TRUE(scope.stop_status("test").ok());
  EXPECT_NO_THROW(scope.throw_if_stopped("test"));
}

TEST(CancelScope, ExpiredDeadlineStopsWithDeadlineExceeded) {
  CancelScope scope(Deadline::expired(), nullptr);
  EXPECT_FALSE(CancelScope::poll());
  EXPECT_TRUE(scope.should_stop());
  EXPECT_EQ(scope.stop_reason(), CancelScope::Stop::kDeadline);
  const Status st = scope.stop_status("flow.test");
  EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(st.stage(), "flow.test");
  try {
    scope.throw_if_stopped("flow.test");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kDeadlineExceeded);
  }
}

TEST(CancelScope, RaisedTokenStopsWithCancelled) {
  CancelToken token;
  CancelScope scope(Deadline::unlimited(), &token);
  EXPECT_TRUE(CancelScope::poll());
  token.request_cancel();
  EXPECT_FALSE(CancelScope::poll());
  EXPECT_EQ(scope.stop_reason(), CancelScope::Stop::kCancel);
  EXPECT_EQ(scope.stop_status("s").code(), ErrorCode::kCancelled);
  EXPECT_THROW(scope.throw_if_stopped("s"), StatusError);
}

// The first observed reason wins and is never re-derived from the clock or
// the token - later polls see the same latched reason.
TEST(CancelScope, StopReasonIsLatched) {
  CancelToken token;
  CancelScope scope(Deadline::expired(), &token);
  EXPECT_FALSE(CancelScope::poll());  // latches kDeadline
  token.request_cancel();             // too late to change the reason
  EXPECT_FALSE(CancelScope::poll());
  EXPECT_EQ(scope.stop_reason(), CancelScope::Stop::kDeadline);
  EXPECT_EQ(scope.stop_status("s").code(), ErrorCode::kDeadlineExceeded);
}

// Diagnostic reproducibility: the stop Status must not embed clock readings,
// so two runs stopping in the same stage produce byte-identical diagnostics.
TEST(CancelScope, StopStatusIsDeterministic) {
  std::string first, second;
  {
    CancelScope scope(Deadline::expired(), nullptr);
    (void)scope.should_stop();
    first = scope.stop_status("flow.sensitivity").to_string();
  }
  {
    CancelScope scope(Deadline::expired(), nullptr);
    (void)scope.should_stop();
    second = scope.stop_status("flow.sensitivity").to_string();
  }
  EXPECT_EQ(first, second);
}

TEST(CancelScope, InnerScopeObservesOuterStop) {
  CancelScope outer(Deadline::expired(), nullptr);
  {
    CancelScope inner(Deadline::unlimited(), nullptr);
    EXPECT_EQ(CancelScope::current(), &inner);
    // The inner scope's own budget is unlimited, but the enclosing scope has
    // already expired - work inside must still stop.
    EXPECT_FALSE(CancelScope::poll());
  }
  EXPECT_EQ(CancelScope::current(), &outer);
}

TEST(CancelScope, ScopesUnwindInNestingOrder) {
  EXPECT_EQ(CancelScope::current(), nullptr);
  {
    CancelScope a(Deadline::unlimited(), nullptr);
    {
      CancelScope b(Deadline::unlimited(), nullptr);
      EXPECT_EQ(CancelScope::current(), &b);
    }
    EXPECT_EQ(CancelScope::current(), &a);
  }
  EXPECT_EQ(CancelScope::current(), nullptr);
}

TEST(CancelScope, CheckRaisesTheStopAsStatusError) {
  CancelScope scope(Deadline::expired(), nullptr);
  try {
    CancelScope::check("flow.placement");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(e.status().stage(), "flow.placement");
  }
}

// A stopped scope makes parallel_for skip whole chunks: result slots keep
// their initial values, and no chunk is ever half-run.
TEST(CancelScope, StoppedScopeSkipsWholeChunksInParallelFor) {
  CancelScope scope(Deadline::expired(), nullptr);
  (void)scope.should_stop();  // latch before submission
  std::vector<int> out(64, -1);
  parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); },
               8);
  for (int v : out) EXPECT_EQ(v, -1);
}

TEST(CancelScope, StoppedScopeLeavesReduceAtInit) {
  CancelScope scope(Deadline::expired(), nullptr);
  (void)scope.should_stop();
  const double total =
      parallel_sum(0, 1000, [](std::size_t i) { return static_cast<double>(i); }, 16);
  EXPECT_EQ(total, 0.0);
}

TEST(CancelScope, RunningScopeDoesNotPerturbParallelResults) {
  std::vector<double> plain(512), scoped(512);
  parallel_for(0, plain.size(),
               [&](std::size_t i) { plain[i] = 1.0 / (1.0 + static_cast<double>(i)); },
               16);
  {
    CancelScope scope(Deadline::after_ms(60000), nullptr);
    parallel_for(
        0, scoped.size(),
        [&](std::size_t i) { scoped[i] = 1.0 / (1.0 + static_cast<double>(i)); }, 16);
  }
  EXPECT_EQ(plain, scoped);  // bit-identical
}

}  // namespace
}  // namespace emi::core
