#include "src/geom/polygon.hpp"

#include <gtest/gtest.h>

namespace emi::geom {
namespace {

Polygon l_shape() {
  // L-shaped board: 10 x 10 with a 5 x 5 bite from the top-right.
  return Polygon{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
}

TEST(Polygon, AreaAndOrientationNormalization) {
  const Polygon ccw{{0, 0}, {4, 0}, {4, 3}, {0, 3}};
  EXPECT_DOUBLE_EQ(ccw.area(), 12.0);
  // Clockwise input is normalized to CCW, area stays positive.
  const Polygon cw{{0, 0}, {0, 3}, {4, 3}, {4, 0}};
  EXPECT_DOUBLE_EQ(cw.area(), 12.0);
  EXPECT_DOUBLE_EQ(l_shape().area(), 75.0);
}

TEST(Polygon, Bbox) {
  const Rect bb = l_shape().bbox();
  EXPECT_EQ(bb, Rect::from_corners({0, 0}, {10, 10}));
}

TEST(Polygon, CentroidOfRectangle) {
  const Polygon p = Polygon::rectangle(Rect::from_corners({2, 2}, {6, 4}));
  const Vec2 c = p.centroid();
  EXPECT_NEAR(c.x, 4.0, 1e-12);
  EXPECT_NEAR(c.y, 3.0, 1e-12);
}

TEST(Polygon, ContainsPoint) {
  const Polygon p = l_shape();
  EXPECT_TRUE(p.contains(Vec2{2, 2}));
  EXPECT_TRUE(p.contains(Vec2{8, 2}));   // in the leg
  EXPECT_TRUE(p.contains(Vec2{2, 8}));   // in the other leg
  EXPECT_FALSE(p.contains(Vec2{8, 8}));  // in the bite
  EXPECT_TRUE(p.contains(Vec2{0, 0}));   // vertex counts as inside
  EXPECT_TRUE(p.contains(Vec2{5, 7}));   // on the inner edge
  EXPECT_FALSE(p.contains(Vec2{-1, 5}));
}

TEST(Polygon, ContainsRect) {
  const Polygon p = l_shape();
  EXPECT_TRUE(p.contains(Rect::from_corners({1, 1}, {4, 4})));
  EXPECT_TRUE(p.contains(Rect::from_corners({6, 1}, {9, 4})));
  EXPECT_FALSE(p.contains(Rect::from_corners({6, 6}, {9, 9})));   // in the bite
  EXPECT_FALSE(p.contains(Rect::from_corners({4, 4}, {6, 6})));   // straddles notch
  EXPECT_FALSE(p.contains(Rect::from_corners({-1, 1}, {2, 3})));  // sticks out
}

// Non-convex trap: all four rect corners inside, but an edge dips through.
TEST(Polygon, ContainsRectCatchesEdgeCrossing) {
  // A "pac-man": square with a wedge cut into the right side.
  const Polygon pac{{0, 0}, {10, 0}, {10, 4}, {4, 5}, {10, 6}, {0, 10}};
  const Rect r = Rect::from_corners({3, 1}, {9, 9});
  // Some corners may be inside, but the wedge edges cross the rectangle.
  EXPECT_FALSE(pac.contains(r));
}

TEST(Polygon, BoundaryDistance) {
  const Polygon p = Polygon::rectangle(Rect::from_corners({0, 0}, {10, 10}));
  EXPECT_NEAR(p.boundary_distance({5, 5}), 5.0, 1e-12);
  EXPECT_NEAR(p.boundary_distance({0, 5}), 0.0, 1e-12);
  EXPECT_NEAR(p.boundary_distance({12, 5}), 2.0, 1e-12);
}

TEST(Polygon, ShrunkRectangle) {
  const Polygon p = Polygon::rectangle(Rect::from_corners({0, 0}, {10, 10}));
  const Polygon s = p.shrunk(2.0);
  ASSERT_TRUE(s.valid());
  EXPECT_NEAR(s.area(), 36.0, 1e-9);
  EXPECT_TRUE(s.contains(Vec2{5, 5}));
  EXPECT_FALSE(s.contains(Vec2{1, 1}));
}

TEST(Polygon, ShrunkTooMuchBecomesInvalid) {
  const Polygon p = Polygon::rectangle(Rect::from_corners({0, 0}, {4, 4}));
  EXPECT_FALSE(p.shrunk(3.0).valid());
}

TEST(Polygon, ShrunkZeroIsIdentity) {
  const Polygon p = l_shape();
  EXPECT_DOUBLE_EQ(p.shrunk(0.0).area(), p.area());
}

TEST(Polygon, InvalidPolygons) {
  EXPECT_FALSE(Polygon{}.valid());
  EXPECT_FALSE((Polygon{{0, 0}, {1, 1}}).valid());
  EXPECT_FALSE(Polygon{}.contains(Vec2{0, 0}));
}

TEST(Segments, Intersection) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  // Collinear overlapping counts as intersecting.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // T-junction endpoint touch.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 2}));
}

TEST(Segments, PointDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 0}, {-1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 0}, {0, 0}, {0, 0}), 0.0);
}

// Property sweep: shrinking by m then testing a point at distance > m from
// the boundary of the original must keep the centroid inside (convex case).
class ShrinkProperty : public ::testing::TestWithParam<double> {};

TEST_P(ShrinkProperty, CentroidStaysInside) {
  const Polygon p = Polygon::rectangle(Rect::from_corners({0, 0}, {20, 12}));
  const Polygon s = p.shrunk(GetParam());
  ASSERT_TRUE(s.valid());
  EXPECT_TRUE(s.contains(p.centroid()));
  EXPECT_LT(s.area(), p.area());
}

INSTANTIATE_TEST_SUITE_P(Margins, ShrinkProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 3.5, 5.0));

}  // namespace
}  // namespace emi::geom
