// Adaptive frequency refinement: the 500-seed fuzz battery comparing the
// accelerated sweep against the dense reference grid. Solved points must be
// bit-identical to the dense sweep, every interpolated point must stay
// within tol_db of it, a disabled accel must reproduce the dense sweep
// bitwise, and refinement must be invariant to the thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ckt/ac.hpp"
#include "src/ckt/circuit.hpp"
#include "src/core/thread_pool.hpp"
#include "src/emi/noise_source.hpp"
#include "src/numeric/rng.hpp"
#include "src/numeric/stats.hpp"
#include "src/sweep/adaptive.hpp"

namespace emi::sweep {
namespace {

// A randomized 1..3 stage LC low-pass ladder: series coil (with winding
// resistance) per stage plus a shunt capacitor with ESL + ESR, driven by a
// unit AC noise source and measured across a 50 ohm load. The ESR floors
// bound the resonance Q, but notches and peaks still move freely with the
// seed - the workload the refinement has to chase.
ckt::Circuit random_filter(num::Rng& rng, std::string* meas) {
  ckt::Circuit c;
  c.add_vsource("VN", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RS", "in", "n0", rng.uniform(1.0, 10.0));
  std::string prev = "n0";
  const int stages = 1 + static_cast<int>(rng.uniform() * 2.999);
  for (int s = 0; s < stages; ++s) {
    const std::string tag = std::to_string(s);
    const std::string mid = "m" + tag;
    const std::string nxt = "n" + std::to_string(s + 1);
    c.add_inductor("L" + tag, prev, mid, rng.uniform(1e-6, 47e-6));
    c.add_resistor("RW" + tag, mid, nxt, rng.uniform(0.05, 1.0));
    c.add_capacitor("C" + tag, nxt, "c" + tag, rng.uniform(22e-9, 1e-6));
    c.add_inductor("LC" + tag, "c" + tag, "e" + tag, rng.uniform(5e-9, 60e-9));
    c.add_resistor("RC" + tag, "e" + tag, "0", rng.uniform(0.02, 0.5));
    prev = nxt;
  }
  c.add_resistor("RLOAD", prev, "0", 50.0);
  *meas = prev;
  return c;
}

std::vector<double> dense_reference(const ckt::Circuit& c, const std::string& meas,
                                    const std::vector<double>& freqs,
                                    const std::vector<double>& env) {
  ckt::AcOptions ac;
  ac.source_scale = env;
  const ckt::AcSolution sol = ckt::ac_solve(c, freqs, ac);
  std::vector<double> level(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    level[i] = num::volts_to_dbuv(std::abs(sol.voltage(meas, i)));
  }
  return level;
}

TEST(MonotoneCubic, ReproducesKnotsExactly) {
  const std::vector<double> x{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> y{1.0, -2.0, 7.0, 7.0};
  const std::vector<double> out = monotone_cubic_interp(x, y, x);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], y[i]) << i;
}

TEST(MonotoneCubic, MonotoneDataNeverOvershoots) {
  // Fritsch-Carlson's defining property: between two knots of monotone data
  // the cubic stays inside [y_i, y_{i+1}] - no Runge wiggle.
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{0.0, 0.1, 5.0, 5.1, 5.2};
  for (double q = 0.0; q <= 4.0; q += 0.01) {
    const double v = monotone_cubic_interp(x, y, {q})[0];
    EXPECT_GE(v, 0.0 - 1e-12);
    EXPECT_LE(v, 5.2 + 1e-12);
    const std::size_t i = std::min<std::size_t>(static_cast<std::size_t>(q), 3);
    EXPECT_GE(v, y[i] - 1e-12) << q;
    EXPECT_LE(v, y[i + 1] + 1e-12) << q;
  }
}

TEST(MonotoneCubic, ClampsOutsideTheKnotRange) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{3.0, 5.0};
  EXPECT_EQ(monotone_cubic_interp(x, y, {0.0})[0], 3.0);
  EXPECT_EQ(monotone_cubic_interp(x, y, {9.0})[0], 5.0);
}

TEST(MonotoneCubic, RejectsDegenerateKnots) {
  EXPECT_THROW(monotone_cubic_interp({1.0}, {2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(monotone_cubic_interp({1.0, 1.0}, {2.0, 3.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(monotone_cubic_interp({1.0, 2.0}, {2.0}, {1.0}),
               std::invalid_argument);
}

TEST(AdaptiveSweep, DisabledAccelIsBitIdenticalToDense) {
  num::Rng rng(42);
  std::string meas;
  const ckt::Circuit c = random_filter(rng, &meas);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 80);
  const std::vector<double> env(80, 1.0);
  const std::vector<double> ref = dense_reference(c, meas, freqs, env);

  const AdaptiveSweepResult res =
      adaptive_ac_sweep(c, {meas}, freqs, env, {}, SweepAccel{});
  ASSERT_EQ(res.level_dbuv.size(), 1u);
  EXPECT_EQ(res.level_dbuv[0], ref);  // bitwise
  for (std::uint8_t s : res.solved) EXPECT_EQ(s, 1);
  EXPECT_EQ(res.stats.full_solves, 80u);
  EXPECT_EQ(res.stats.interp_points, 0u);
}

TEST(AdaptiveSweep, RejectsMismatchedInputs) {
  num::Rng rng(1);
  std::string meas;
  const ckt::Circuit c = random_filter(rng, &meas);
  EXPECT_THROW(adaptive_ac_sweep(c, {meas}, {1e6, 2e6}, {1.0}, {}, SweepAccel{}),
               std::invalid_argument);
  EXPECT_THROW(adaptive_ac_sweep(c, {}, {1e6, 2e6}, {1.0, 1.0}, {}, SweepAccel{}),
               std::invalid_argument);
}

// The tentpole acceptance fuzz: 500 random filters, adaptive vs dense.
TEST(AdaptiveSweep, FuzzSolvedBitwiseEqualAndInterpWithinTol) {
  const emc::TrapezoidSpectrum trapezoid{12.0, 1.0 / 300e3, 0.42 / 300e3, 30e-9};
  SweepAccel accel;
  accel.adaptive = true;  // default tol_db / coarse_points
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 240);

  std::uint64_t total_full = 0;
  std::uint64_t total_interp = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    num::Rng rng(seed);
    std::string meas;
    const ckt::Circuit c = random_filter(rng, &meas);
    // Alternate a flat and a trapezoid envelope: the admission rule works on
    // the envelope-normalized transfer, so both must behave identically.
    const std::vector<double> env = (seed % 2 == 0)
                                        ? std::vector<double>(freqs.size(), 1.0)
                                        : emc::envelope_series(trapezoid, freqs);
    const std::vector<double> ref = dense_reference(c, meas, freqs, env);
    const AdaptiveSweepResult res = adaptive_ac_sweep(c, {meas}, freqs, env, {}, accel);

    ASSERT_EQ(res.solved.size(), freqs.size());
    std::uint64_t solved = 0;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      if (res.solved[i]) {
        ++solved;
        EXPECT_EQ(res.level_dbuv[0][i], ref[i])  // bitwise: same MNA solve
            << "seed " << seed << " point " << i;
        EXPECT_EQ(res.error_bound_db[i], 0.0);
      } else {
        EXPECT_LE(std::abs(res.level_dbuv[0][i] - ref[i]), accel.tol_db)
            << "seed " << seed << " point " << i;
        EXPECT_LE(res.error_bound_db[i], accel.tol_db);
      }
    }
    EXPECT_EQ(res.stats.full_solves, solved) << "seed " << seed;
    EXPECT_EQ(res.stats.interp_points, freqs.size() - solved) << "seed " << seed;
    total_full += res.stats.full_solves;
    total_interp += res.stats.interp_points;
  }
  // Economics over the whole battery: the adaptive sweep must interpolate
  // the clear majority of dense points (>= 2x fewer solves than dense; the
  // flow-level acceptance asserts the 10x on the real workloads).
  EXPECT_LT(total_full, total_interp);
}

TEST(AdaptiveSweep, RefinementIsThreadCountInvariant) {
  num::Rng rng(2026);
  std::string meas;
  const ckt::Circuit c = random_filter(rng, &meas);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 160);
  const std::vector<double> env(freqs.size(), 1.0);
  SweepAccel accel;
  accel.adaptive = true;

  core::ThreadPool::set_global_thread_count(1);
  const AdaptiveSweepResult ref = adaptive_ac_sweep(c, {meas}, freqs, env, {}, accel);
  for (std::size_t lanes : {2u, 4u, 8u}) {
    core::ThreadPool::set_global_thread_count(lanes);
    const AdaptiveSweepResult res =
        adaptive_ac_sweep(c, {meas}, freqs, env, {}, accel);
    EXPECT_EQ(res.level_dbuv, ref.level_dbuv) << lanes << " lanes";
    EXPECT_EQ(res.solved, ref.solved) << lanes << " lanes";
    EXPECT_EQ(res.error_bound_db, ref.error_bound_db) << lanes << " lanes";
    EXPECT_EQ(res.stats.full_solves, ref.stats.full_solves) << lanes << " lanes";
  }
  core::ThreadPool::set_global_thread_count(core::ThreadPool::default_thread_count());
}

TEST(AdaptiveSweep, DegradedLadderCoarsensTolerances) {
  SweepAccel a;
  a.adaptive = true;
  const SweepAccel d2 = a.degraded(2);
  EXPECT_EQ(d2.tol_db, a.tol_db * 4.0);
  EXPECT_EQ(d2.gate_db, a.gate_db * 4.0);
  EXPECT_EQ(a.degraded(0).tol_db, a.tol_db);  // step 0: unchanged
  // Coarser admission can only solve fewer (or equal) points.
  num::Rng rng(7);
  std::string meas;
  const ckt::Circuit c = random_filter(rng, &meas);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 120);
  const std::vector<double> env(freqs.size(), 1.0);
  const auto fine = adaptive_ac_sweep(c, {meas}, freqs, env, {}, a);
  const auto coarse = adaptive_ac_sweep(c, {meas}, freqs, env, {}, a.degraded(3));
  EXPECT_LE(coarse.stats.full_solves, fine.stats.full_solves);
}

}  // namespace
}  // namespace emi::sweep
