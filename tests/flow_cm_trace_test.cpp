#include <gtest/gtest.h>

#include <cmath>

#include "src/flow/cm_model.hpp"
#include "src/flow/trace_model.hpp"
#include "src/numeric/stats.hpp"

namespace emi::flow {
namespace {

double max_level(const emc::EmissionSpectrum& s) {
  double m = -300.0;
  for (double v : s.level_dbuv) m = std::max(m, v);
  return m;
}

TEST(CmModel, YCapReducesCmNoise) {
  emc::EmissionSweepOptions sweep;
  sweep.n_points = 60;
  CmModelParams with;
  CmModelParams without = with;
  without.with_ycap = false;
  const double lvl_with = max_level(cm_emission(with, sweep));
  const double lvl_without = max_level(cm_emission(without, sweep));
  EXPECT_LT(lvl_with, lvl_without - 5.0);
}

TEST(CmModel, ChokeReducesCmNoise) {
  emc::EmissionSweepOptions sweep;
  sweep.n_points = 60;
  CmModelParams with;
  CmModelParams without = with;
  without.with_choke = false;
  EXPECT_LT(max_level(cm_emission(with, sweep)),
            max_level(cm_emission(without, sweep)) - 5.0);
}

TEST(CmModel, ParasiticCapacitanceDrivesLevel) {
  emc::EmissionSweepOptions sweep;
  sweep.n_points = 60;
  CmModelParams small;
  small.c_par = 20e-12;
  CmModelParams large;
  large.c_par = 200e-12;
  // 10x injection capacitance ~ +20 dB at frequencies where C_par is the
  // bottleneck.
  const double delta = max_level(cm_emission(large, sweep)) -
                       max_level(cm_emission(small, sweep));
  EXPECT_GT(delta, 10.0);
  EXPECT_LT(delta, 25.0);
}

TEST(CmModel, ChokeYcapCouplingDegradesFilter) {
  // The Fig 8 mechanism at circuit level: leakage coupling between the CM
  // choke and the Y-cap ESL bypasses the filter at high frequency.
  emc::EmissionSweepOptions sweep;
  sweep.f_min_hz = 5e6;  // the ESL-coupling region
  sweep.n_points = 60;
  CmModelParams decoupled;   // k = 0 (capacitor at a preferred position)
  CmModelParams coupled;
  coupled.k_choke_ycap = 0.02;  // capacitor at a bad bearing
  const emc::EmissionSpectrum s0 = cm_emission(decoupled, sweep);
  const emc::EmissionSpectrum s1 = cm_emission(coupled, sweep);
  double worst = 0.0;
  for (std::size_t i = 0; i < s0.level_dbuv.size(); ++i) {
    worst = std::max(worst, s1.level_dbuv[i] - s0.level_dbuv[i]);
  }
  EXPECT_GT(worst, 6.0);
}

TEST(CmModel, MeasNodeAndNoiseExposed) {
  const CmModel m = make_cm_model();
  EXPECT_EQ(m.meas_node, "lisn_cm");
  EXPECT_TRUE(m.circuit.find_node("lisn_cm").has_value());
  EXPECT_DOUBLE_EQ(m.noise.amplitude, 12.0);
}

TEST(TraceModel, RoutedInductanceScalesWithLength) {
  place::RoutedNet short_net{"s", 0, {{{0, 0}, {10, 0}}}, 10.0};
  place::RoutedNet long_net{"l", 0, {{{0, 0}, {40, 0}}}, 40.0};
  const double ls = routed_net_inductance(short_net);
  const double ll = routed_net_inductance(long_net);
  EXPECT_GT(ll, 3.0 * ls);  // superlinear (log term)
  // ~0.6-0.9 nH/mm for a 1.5 mm trace.
  EXPECT_GT(ll, 20e-9);
  EXPECT_LT(ll, 50e-9);
}

TEST(TraceModel, PathBuiltAtTraceHeight) {
  place::RoutedNet net{"n", 0, {{{0, 0}, {10, 0}}, {{10, 0}, {10, 5}}}, 15.0};
  const peec::SegmentPath path = routed_net_path(net);
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(path.segments[0].a.z, 0.1);
  EXPECT_NEAR(path.total_length(), 15.0, 1e-9);
}

TEST(TraceModel, ReportCoversAllNets) {
  const BuckConverter bc = make_buck_converter();
  const place::Layout bad = layout_unfavorable(bc);
  const auto report = trace_report(bc, bad);
  EXPECT_EQ(report.size(), bc.board.nets().size());
  for (const auto& row : report) {
    EXPECT_GT(row.length_mm, 0.0) << row.net;
    EXPECT_GT(row.inductance_nh, 0.0) << row.net;
  }
}

TEST(TraceModel, LayoutTracesUpdateLoopInductance) {
  const BuckConverter bc = make_buck_converter();
  const peec::CouplingExtractor ex;
  const place::Layout bad = layout_unfavorable(bc);
  const ckt::Circuit base = circuit_with_couplings(bc, bad, ex);
  const ckt::Circuit traced = circuit_with_layout_traces(bc, bad, ex);
  const double l_base = base.inductors()[base.inductor_index("L_LOOP")].henries;
  const double l_traced =
      traced.inductors()[traced.inductor_index("L_LOOP")].henries;
  EXPECT_NE(l_base, l_traced);  // the schematic guess got replaced
  EXPECT_GT(l_traced, 5e-9);
  EXPECT_LT(l_traced, 200e-9);
}

TEST(TraceModel, FartherLayoutMoreLoopInductance) {
  const BuckConverter bc = make_buck_converter();
  const peec::CouplingExtractor ex;
  // In the unfavorable layout the N_SW members sit close together; in the
  // optimized one they are spread - the routed loop inductance grows.
  const ckt::Circuit bad_ckt = circuit_with_layout_traces(bc, layout_unfavorable(bc), ex);
  const ckt::Circuit good_ckt = circuit_with_layout_traces(bc, layout_optimized(bc), ex);
  const double l_bad = bad_ckt.inductors()[bad_ckt.inductor_index("L_LOOP")].henries;
  const double l_good = good_ckt.inductors()[good_ckt.inductor_index("L_LOOP")].henries;
  EXPECT_GT(l_good, 0.0);
  EXPECT_GT(l_bad, 0.0);
}

}  // namespace
}  // namespace emi::flow
