#include "src/place/placer.hpp"

#include <gtest/gtest.h>

#include "src/place/drc.hpp"

namespace emi::place {
namespace {

Design basic_design(std::size_t n_comps, double pemd = 0.0) {
  Design d;
  d.set_clearance(Millimeters{1.0});
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 80}))});
  for (std::size_t i = 0; i < n_comps; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = 12;
    c.depth_mm = 8;
    c.height_mm = 5;
    c.axis_deg = 90.0;
    d.add_component(c);
  }
  if (pemd > 0.0) {
    for (std::size_t i = 0; i < n_comps; ++i) {
      for (std::size_t j = i + 1; j < n_comps; ++j) {
        d.add_emd_rule("C" + std::to_string(i), "C" + std::to_string(j), Millimeters{pemd});
      }
    }
  }
  return d;
}

TEST(AutoPlace, AllPlacedAndClean) {
  Design d = basic_design(6, 18.0);
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.placed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
  EXPECT_GT(stats.candidates_evaluated, 0u);
  EXPECT_LE(stats.rotation_emd_after_mm, stats.rotation_emd_before_mm);
}

TEST(AutoPlace, Deterministic) {
  Design d = basic_design(5, 15.0);
  Layout l1 = Layout::unplaced(d);
  Layout l2 = Layout::unplaced(d);
  auto_place(d, l1);
  auto_place(d, l2);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(l1.placements[i].position, l2.placements[i].position);
    EXPECT_EQ(l1.placements[i].rot_deg, l2.placements[i].rot_deg);
  }
}

TEST(AutoPlace, PreplacedIsObstacle) {
  Design d = basic_design(3);
  d.components()[0].preplaced = true;
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{50, 40}, 0.0, 0, true};
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.placed, 2u);  // only the two free ones
  EXPECT_EQ(l.placements[0].position, (geom::Vec2{50, 40}));
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

TEST(AutoPlace, RespectsKeepouts) {
  Design d = basic_design(4);
  // Block most of the board except a corridor.
  d.add_keepout({"big", 0,
                 geom::Cuboid::full_height(geom::Rect::from_corners({0, 20}, {100, 80}))});
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(d.footprint(i, l.placements[i]).hi.y, 20.0 + 1e-9);
  }
}

TEST(AutoPlace, HonorsNetLengthCaps) {
  Design d = basic_design(4);
  d.add_net({"short", {{"C0", ""}, {"C1", ""}}, 25.0});
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  const DrcReport r = DrcEngine(d).check(l);
  EXPECT_EQ(r.count(ViolationKind::kNetLength), 0u);
}

TEST(AutoPlace, GroupsEndUpDisjoint) {
  Design d = basic_design(8);
  for (std::size_t i = 0; i < 8; ++i) {
    d.components()[i].group = i < 4 ? "g1" : "g2";
  }
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(DrcEngine(d).check(l).count(ViolationKind::kGroupSplit), 0u);
}

TEST(AutoPlace, ImpossibleRuleFails) {
  // Two components, rule far larger than the board diagonal, rotation
  // restricted to parallel: nowhere to go.
  Design d = basic_design(2, 500.0);
  for (auto& c : d.components()) c.allowed_rotations = {0.0};
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 1u);
  ASSERT_EQ(stats.failed_components.size(), 1u);
}

TEST(AutoPlace, TwoBoardFlowUsesPartitioning) {
  Design d;
  d.set_clearance(Millimeters{1.0});
  d.set_board_count(2);
  d.add_area({"b0", 0, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {60, 60}))});
  d.add_area({"b1", 1, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {60, 60}))});
  for (int i = 0; i < 6; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = 10;
    c.depth_mm = 10;
    d.add_component(c);
  }
  d.add_net({"n1", {{"C0", ""}, {"C1", ""}, {"C2", ""}}});
  d.add_net({"n2", {{"C3", ""}, {"C4", ""}, {"C5", ""}}});
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u);
  // Each cluster stays on one board, no net is cut.
  EXPECT_EQ(stats.cut_nets, 0u);
  EXPECT_EQ(l.placements[0].board, l.placements[1].board);
  EXPECT_EQ(l.placements[3].board, l.placements[4].board);
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

TEST(SequentialPlacer, PriorityPutsConstrainedFirst) {
  Design d = basic_design(3);
  d.add_emd_rule("C1", "C2", Millimeters{30.0});  // C1, C2 carry EMD budget, C0 none
  const SequentialPlacer p(d);
  const auto order = p.priority_order();
  EXPECT_EQ(order.back(), d.component_index("C0"));
}

TEST(SequentialPlacer, IsLegalChecksEverything) {
  Design d = basic_design(2, 30.0);
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{20, 20}, 0.0, 0, true};
  const SequentialPlacer p(d);
  // Too close (EMD).
  EXPECT_FALSE(p.is_legal(l, 1, {{35, 20}, 0.0, 0, true}));
  // Same spot but perpendicular: legal (EMD -> 0, no overlap).
  EXPECT_TRUE(p.is_legal(l, 1, {{35, 20}, 90.0, 0, true}));
  // Far enough with parallel axes: legal.
  EXPECT_TRUE(p.is_legal(l, 1, {{60, 20}, 0.0, 0, true}));
  // Outside the board: illegal.
  EXPECT_FALSE(p.is_legal(l, 1, {{99, 20}, 0.0, 0, true}));
  // Overlapping: illegal even if rotated.
  EXPECT_FALSE(p.is_legal(l, 1, {{21, 20}, 90.0, 0, true}));
}

TEST(SequentialPlacer, SizeMismatchThrows) {
  Design d = basic_design(2);
  Layout l;
  l.placements.resize(1);
  std::vector<double> rots(2, 0.0);
  std::vector<int> boards(2, 0);
  EXPECT_THROW(SequentialPlacer(d).place(l, rots, boards), std::invalid_argument);
}

// Property sweep: growing component counts keep the layout legal.
class PlacerScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlacerScale, AlwaysLegal) {
  Design d = basic_design(GetParam(), 14.0);
  Layout l = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, l);
  EXPECT_EQ(stats.failed, 0u) << "n = " << GetParam();
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlacerScale, ::testing::Values(2, 4, 8, 12, 16));

TEST(AutoPlace, NullCandidateCostHookChangesNothing) {
  Design d = basic_design(5, 15.0);
  Layout plain = Layout::unplaced(d);
  Layout hooked = Layout::unplaced(d);
  auto_place(d, plain);
  AutoPlaceOptions opt;
  opt.placer.candidate_cost = [](std::size_t, const Placement&) { return 0.0; };
  auto_place(d, hooked, opt);
  // A hook that adds zero must leave every placement bit-identical.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(plain.placements[i].position, hooked.placements[i].position);
    EXPECT_EQ(plain.placements[i].rot_deg, hooked.placements[i].rot_deg);
  }
}

TEST(AutoPlace, CandidateCostHookSteersPlacement) {
  Design d = basic_design(4);
  Layout l = Layout::unplaced(d);
  AutoPlaceOptions opt;
  // Heavily penalize the right half of the board: every component must land
  // with its center at x <= 50 even though packing would prefer otherwise.
  opt.placer.candidate_cost = [](std::size_t, const Placement& cand) {
    return cand.position.x > 50.0 ? 1e9 : 0.0;
  };
  const PlaceStats stats = auto_place(d, l, opt);
  EXPECT_EQ(stats.failed, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(l.placements[i].position.x, 50.0 + 1e-9) << "component " << i;
  }
}

}  // namespace
}  // namespace emi::place
