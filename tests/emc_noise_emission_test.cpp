#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/emi/emission.hpp"
#include "src/emi/lisn.hpp"
#include "src/emi/measurement.hpp"
#include "src/emi/noise_source.hpp"
#include "src/numeric/stats.hpp"

namespace emi::emc {
namespace {

ckt::Waveform ref_trapezoid() {
  // 12 V, 300 kHz, 30 ns edges, ~42 % duty.
  const double period = 1.0 / 300e3;
  return ckt::Waveform::trapezoid(0.0, 12.0, period, 30e-9, 0.42 * period - 30e-9,
                                  30e-9);
}

TEST(NoiseSource, SpectrumParams) {
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  EXPECT_DOUBLE_EQ(s.amplitude, 12.0);
  EXPECT_NEAR(s.on_s, 0.42 / 300e3, 1e-9);  // includes half edges
  EXPECT_DOUBLE_EQ(s.rise_s, 30e-9);
  EXPECT_THROW(spectrum_params(ckt::Waveform::dc(1.0)), std::invalid_argument);
}

TEST(NoiseSource, HarmonicFourierCheck) {
  // The n-th harmonic of a trapezoid equals 2*A*d*|sinc(pi n d)||sinc(pi n tr/T)|.
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  const double d = s.on_s / s.period_s;
  const double h1 = harmonic_amplitude(s, 1);
  const double x_rise = std::numbers::pi * s.rise_s / s.period_s;
  const double expected1 =
      2.0 * 12.0 * d *
      std::fabs(std::sin(std::numbers::pi * d) / (std::numbers::pi * d)) *
      std::fabs(std::sin(x_rise) / x_rise);
  EXPECT_NEAR(h1, expected1, 1e-9 * expected1);
  EXPECT_THROW(harmonic_amplitude(s, 0), std::invalid_argument);
}

TEST(NoiseSource, EnvelopeBoundsHarmonics) {
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  for (std::size_t n = 1; n <= 200; n += 7) {
    const double f = static_cast<double>(n) / s.period_s;
    EXPECT_GE(envelope(s, f) * 1.0001, harmonic_amplitude(s, n)) << "n = " << n;
  }
}

TEST(NoiseSource, EnvelopeCornersAndSlopes) {
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  const double f1 = 1.0 / (std::numbers::pi * s.on_s);
  const double f2 = 1.0 / (std::numbers::pi * s.rise_s);
  // Below f1: flat at 2*A*d.
  EXPECT_NEAR(envelope(s, f1 / 10.0), 2.0 * 12.0 * s.on_s / s.period_s, 1e-9);
  // Between f1 and f2: -20 dB/dec.
  const double e1 = envelope(s, 2e6);
  const double e2 = envelope(s, 4e6);
  EXPECT_NEAR(num::db20(e1 / e2), 6.02, 0.1);
  // Above f2: -40 dB/dec.
  const double e3 = envelope(s, 4.0 * f2);
  const double e4 = envelope(s, 8.0 * f2);
  EXPECT_NEAR(num::db20(e3 / e4), 12.04, 0.1);
  EXPECT_THROW(envelope(s, 0.0), std::invalid_argument);
}

// Simple testbed: noise source -> RC filter -> LISN.
ckt::Circuit testbed() {
  ckt::Circuit c;
  c.add_vsource("VB", "batt", "0", ckt::Waveform::dc(12.0));
  attach_lisn(c, "batt", "dut");
  c.add_vsource("VN", "nz", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RS", "nz", "dut", 100.0);
  return c;
}

TEST(Emission, SweepGridAndLevels) {
  const ckt::Circuit c = testbed();
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  EmissionSweepOptions opt;
  opt.n_points = 50;
  const EmissionSpectrum spec = conducted_emission(c, "LISN_meas", s, opt);
  ASSERT_EQ(spec.freqs_hz.size(), 50u);
  ASSERT_EQ(spec.level_dbuv.size(), 50u);
  EXPECT_NEAR(spec.freqs_hz.front(), 150e3, 1.0);
  EXPECT_NEAR(spec.freqs_hz.back(), 108e6, 100.0);
  // Levels are finite and within a plausible dBuV window.
  for (double l : spec.level_dbuv) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_LT(l, 160.0);
    EXPECT_GT(l, -120.0);
  }
  // The envelope falls with frequency, so the level at the top of the sweep
  // is far below the level at the bottom.
  EXPECT_LT(spec.level_dbuv.back(), spec.level_dbuv.front());
}

TEST(Emission, ScaledVariantMatchesEnvelopePath) {
  const ckt::Circuit c = testbed();
  const TrapezoidSpectrum s = spectrum_params(ref_trapezoid());
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 20);
  const EmissionSpectrum a =
      conducted_emission_scaled(c, "LISN_meas", freqs, envelope_series(s, freqs));
  EmissionSweepOptions opt;
  opt.n_points = 20;
  const EmissionSpectrum b = conducted_emission(c, "LISN_meas", s, opt);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(a.level_dbuv[i], b.level_dbuv[i], 1e-9);
  }
  EXPECT_THROW(conducted_emission_scaled(c, "LISN_meas", freqs, {1.0}),
               std::invalid_argument);
}

TEST(Emission, DeltaDb) {
  EmissionSpectrum a{{1.0, 2.0}, {10.0, 20.0}};
  EmissionSpectrum b{{1.0, 2.0}, {13.0, 15.0}};
  const auto d = delta_db(a, b);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -5.0);
  EmissionSpectrum c{{1.0, 3.0}, {0.0, 0.0}};
  EXPECT_THROW(delta_db(a, c), std::invalid_argument);
}

TEST(Emission, SpectrumFromTransientFindsSwitchingHarmonics) {
  // Drive an RC divider with a 100 kHz square-ish wave and check the
  // fundamental shows up in the FFT spectrum.
  ckt::Circuit c;
  const double period = 1e-5;
  c.add_vsource("V1", "in", "0",
                ckt::Waveform::trapezoid(0.0, 1.0, period, 100e-9, 0.5 * period,
                                         100e-9));
  c.add_resistor("R1", "in", "out", 100.0);
  c.add_resistor("R2", "out", "0", 100.0);
  ckt::TransientOptions topt;
  topt.t_stop = 1e-3;
  topt.dt = 1e-8;
  const ckt::TransientResult tr = ckt::transient_solve(c, topt);
  const EmissionSpectrum spec = spectrum_from_transient(tr, "out", 0.2);
  // Locate the bin nearest 100 kHz.
  double best_level = -200.0;
  for (std::size_t i = 0; i < spec.freqs_hz.size(); ++i) {
    if (std::fabs(spec.freqs_hz[i] - 100e3) < 5e3) {
      best_level = std::max(best_level, spec.level_dbuv[i]);
    }
  }
  // Fundamental of a 0.5 V square wave at the divider: 2*0.5/pi ~ 0.32 V
  // ~ 110 dBuV.
  EXPECT_NEAR(best_level, 110.0, 3.0);
}

TEST(Measurement, PseudoMeasureDeterministicAndBounded) {
  EmissionSpectrum spec;
  spec.freqs_hz = num::log_space(150e3, 108e6, 100);
  spec.level_dbuv.assign(100, 50.0);
  const EmissionSpectrum m1 = pseudo_measure(spec);
  const EmissionSpectrum m2 = pseudo_measure(spec);
  ASSERT_EQ(m1.level_dbuv.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(m1.level_dbuv[i], m2.level_dbuv[i]);  // seeded
    EXPECT_NEAR(m1.level_dbuv[i], 50.0, 10.0);             // bounded ripple
  }
  // RMS of the ripple matches the requested dispersion.
  std::vector<double> ripple(100);
  for (std::size_t i = 0; i < 100; ++i) ripple[i] = m1.level_dbuv[i] - 50.0;
  EXPECT_NEAR(num::rms(ripple), 2.0, 1e-9);
  // The dispersion preserves correlation with the prediction.
  EXPECT_GT(num::pearson(m1.level_dbuv, spec.level_dbuv), -0.2);
}

TEST(Measurement, DifferentSeedDifferentRipple) {
  EmissionSpectrum spec;
  spec.freqs_hz = {1e6, 2e6, 3e6};
  spec.level_dbuv = {40.0, 40.0, 40.0};
  MeasurementModelOptions a, b;
  b.seed = 777;
  EXPECT_NE(pseudo_measure(spec, a).level_dbuv, pseudo_measure(spec, b).level_dbuv);
}

}  // namespace
}  // namespace emi::emc
