// Sweep acceleration through the design flow: defaults stay bit-identical,
// the `sweep.*` profile counters are zero until opted in, the checkpoint
// digest changes exactly when the sweep options change, resume-mid-sweep is
// bit-identical, the result is thread-count invariant, and the headline
// acceptance holds on both golden workloads: >= 10x fewer full AC solves at
// <= 1 dB max deviation (buck converter and the large scenario ladder).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/thread_pool.hpp"
#include "src/emi/emission.hpp"
#include "src/emi/sensitivity.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/checkpoint.hpp"
#include "src/flow/design_flow.hpp"
#include "src/flow/scenario_large.hpp"
#include "src/io/design_format.hpp"
#include "src/numeric/stats.hpp"

namespace emi::flow {
namespace {

FlowOptions accel_options(std::size_t n_points) {
  FlowOptions opt;
  opt.sweep.n_points = n_points;
  opt.sweep_accel.adaptive = true;
  opt.sweep_accel.surrogate = true;
  return opt;
}

std::string temp_ckpt(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// Everything result-bearing in a FlowResult, flattened for equality checks
// (same shape as the checkpoint battery's witness).
std::string fingerprint(const BuckConverter& bc, const FlowResult& r) {
  std::ostringstream o;
  o.precision(17);
  o << "complete=" << r.complete << " peak=" << r.peak_improvement_db << "\n";
  for (double v : r.initial_prediction.level_dbuv) o << v << ",";
  o << "\n";
  for (double v : r.improved_prediction.level_dbuv) o << v << ",";
  o << "\n";
  for (const auto& p : r.simulated_pairs) o << p.first << "+" << p.second << " ";
  o << "\n";
  for (const auto& rule : r.rules) {
    o << rule.comp_a << "|" << rule.comp_b << "|" << rule.pemd.raw() << "\n";
  }
  if (!r.improved_layout.placements.empty()) {
    io::save_layout(o, bc.board, r.improved_layout);
  }
  return o.str();
}

double max_abs_delta(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// The exact-by-default guard: a run that never opted in must surface every
// sweep economics counter as zero (and no interpolated point anywhere).
TEST(SweepFlow, DefaultRunKeepsSweepCountersZero) {
  BuckConverter bc = make_buck_converter();
  FlowOptions opt;
  opt.sweep.n_points = 30;
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);
  ASSERT_TRUE(res.complete);
  EXPECT_EQ(res.profile.count("sweep.full_solves"), 0u);
  EXPECT_EQ(res.profile.count("sweep.interp_points"), 0u);
  EXPECT_EQ(res.profile.count("sweep.surrogate_evals"), 0u);
  EXPECT_EQ(res.profile.count("sweep.escalations"), 0u);
  EXPECT_EQ(res.profile.gauge("sweep.max_residual_db"), 0.0);
}

// A default-constructed SweepAccel is the disabled state: assigning it must
// not move a single result bit, and the checkpoint context digest must stay
// exactly the digest of a build that never had the field.
TEST(SweepFlow, DisabledAccelIsBitIdenticalAndKeepsTheDigest) {
  BuckConverter bc1 = make_buck_converter();
  FlowOptions base;
  base.sweep.n_points = 30;
  const FlowResult ref = run_design_flow(bc1, layout_unfavorable(bc1), base);

  BuckConverter bc2 = make_buck_converter();
  FlowOptions with_field = base;
  with_field.sweep_accel = emi::sweep::SweepAccel{};
  with_field.sweep_accel.tol_db = 123.0;  // knobs are inert while disabled
  const FlowResult res = run_design_flow(bc2, layout_unfavorable(bc2), with_field);

  EXPECT_EQ(fingerprint(bc1, ref), fingerprint(bc2, res));
  BuckConverter bcd = make_buck_converter();
  EXPECT_EQ(flow_context_digest(bcd, layout_unfavorable(bcd), base),
            flow_context_digest(bcd, layout_unfavorable(bcd), with_field));
}

TEST(SweepFlow, DigestChangesIffSweepOptionsChange) {
  BuckConverter bc = make_buck_converter();
  const place::Layout layout = layout_unfavorable(bc);
  FlowOptions base;
  base.sweep.n_points = 30;
  const std::uint64_t d0 = flow_context_digest(bc, layout, base);

  FlowOptions adaptive = base;
  adaptive.sweep_accel.adaptive = true;
  const std::uint64_t d1 = flow_context_digest(bc, layout, adaptive);
  EXPECT_NE(d0, d1);
  EXPECT_EQ(d1, flow_context_digest(bc, layout, adaptive));  // stable

  FlowOptions coarser = adaptive;
  coarser.sweep_accel.tol_db = 0.6;
  EXPECT_NE(d1, flow_context_digest(bc, layout, coarser));
  FlowOptions wider = adaptive;
  wider.sweep_accel.coarse_points = 33;
  EXPECT_NE(d1, flow_context_digest(bc, layout, wider));

  FlowOptions surrogate = base;
  surrogate.sweep_accel.surrogate = true;
  const std::uint64_t d2 = flow_context_digest(bc, layout, surrogate);
  EXPECT_NE(d0, d2);
  EXPECT_NE(d1, d2);
  FlowOptions gated = surrogate;
  gated.sweep_accel.gate_db = 1.0;
  EXPECT_NE(d2, flow_context_digest(bc, layout, gated));
  FlowOptions ordered = surrogate;
  ordered.sweep_accel.max_order = 4;
  EXPECT_NE(d2, flow_context_digest(bc, layout, ordered));
}

// The headline acceptance on the buck golden: the accelerated flow performs
// >= 10x fewer full AC solves than the dense-equivalent workload while every
// predicted level stays within 1 dB of the exact run's.
TEST(SweepFlow, BuckGoldenTenXFewerSolvesWithinOneDb) {
  const std::size_t n_points = 400;
  BuckConverter ref_bc = make_buck_converter();
  FlowOptions ref_opt;
  ref_opt.sweep.n_points = n_points;
  const FlowResult ref = run_design_flow(ref_bc, layout_unfavorable(ref_bc), ref_opt);
  ASSERT_TRUE(ref.complete);

  BuckConverter bc = make_buck_converter();
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc),
                                         accel_options(n_points));
  ASSERT_TRUE(res.complete);

  // Dense-equivalent full solves: one baseline + one per ranked pair in the
  // sensitivity stage, coupled + uncoupled initial predictions, and the
  // verification sweep - each over the full dense grid.
  ASSERT_EQ(res.ranking.size(), ref.ranking.size());
  const std::uint64_t dense_equiv =
      static_cast<std::uint64_t>(res.ranking.size() + 4) * n_points;
  const std::uint64_t full = res.profile.count("sweep.full_solves");
  ASSERT_GT(full, 0u);
  EXPECT_GE(dense_equiv, 10 * full)
      << "dense-equivalent " << dense_equiv << " vs full solves " << full;
  EXPECT_GT(res.profile.count("sweep.surrogate_evals"), 0u);
  EXPECT_GT(res.profile.count("sweep.interp_points"), 0u);

  // Accuracy: the accelerated predictions track the exact ones within 1 dB,
  // and the acceleration did not change which pairs were field-simulated.
  EXPECT_EQ(res.simulated_pairs, ref.simulated_pairs);
  EXPECT_LE(max_abs_delta(res.initial_prediction.level_dbuv,
                          ref.initial_prediction.level_dbuv),
            1.0);
  EXPECT_LE(max_abs_delta(res.improved_prediction.level_dbuv,
                          ref.improved_prediction.level_dbuv),
            1.0);
  EXPECT_NEAR(res.peak_improvement_db, ref.peak_improvement_db, 1.0);
}

// Same acceptance on the large scenario's electrical twin: the n-stage
// filter ladder with two rankable inductors per stage.
TEST(SweepFlow, ScenarioLargeTenXFewerSolvesWithinOneDb) {
  LargeScenarioOptions sopt;
  sopt.n_stages = 4;
  const LargeScenarioCircuit sc = make_large_scenario_circuit(sopt);
  ASSERT_EQ(sc.inductors.size(), 8u);

  const std::size_t n_points = 300;
  emc::SensitivityOptions dense_opt;
  dense_opt.sweep.n_points = n_points;
  const emc::SensitivityReport dense = emc::rank_coupling_sensitivity_report(
      sc.circuit, sc.meas_node, sc.source, dense_opt);

  emc::SensitivityOptions accel_opt = dense_opt;
  accel_opt.accel.adaptive = true;
  accel_opt.accel.surrogate = true;
  const emc::SensitivityReport accel = emc::rank_coupling_sensitivity_report(
      sc.circuit, sc.meas_node, sc.source, accel_opt);

  ASSERT_EQ(dense.ranking.size(), 28u);  // 8 choose 2
  ASSERT_EQ(accel.ranking.size(), 28u);
  EXPECT_EQ(dense.stats.full_solves,
            static_cast<std::uint64_t>(dense.ranking.size() + 1) * n_points);
  ASSERT_GT(accel.stats.full_solves, 0u);
  EXPECT_GE(dense.stats.full_solves, 10 * accel.stats.full_solves)
      << "dense " << dense.stats.full_solves << " vs accelerated "
      << accel.stats.full_solves;

  // Every pair's ranked impact within 1 dB of the exact run's.
  std::map<std::pair<std::string, std::string>, double> exact;
  for (const auto& p : dense.ranking) {
    exact[{p.inductor_a, p.inductor_b}] = p.max_delta_db;
  }
  for (const auto& p : accel.ranking) {
    const auto it = exact.find({p.inductor_a, p.inductor_b});
    ASSERT_NE(it, exact.end()) << p.inductor_a << "+" << p.inductor_b;
    EXPECT_NEAR(p.max_delta_db, it->second, 1.0)
        << p.inductor_a << "+" << p.inductor_b;
  }

  // And the adaptive emission spectrum itself: within 1 dB of dense.
  emc::EmissionSweepOptions eopt;
  eopt.n_points = n_points;
  const emc::EmissionSpectrum exact_spec =
      emc::conducted_emission(sc.circuit, sc.meas_node, sc.source, eopt);
  const emc::AdaptiveEmissionResult adapt = emc::conducted_emission_adaptive(
      sc.circuit, sc.meas_node, sc.source, eopt, accel_opt.accel);
  EXPECT_LE(max_abs_delta(adapt.spectrum.level_dbuv, exact_spec.level_dbuv), 1.0);
  // A single sweep of this deliberately structure-rich ladder refines a big
  // slice of the grid (the admission rule spends solves wherever the
  // response has structure), so the 10x economics are a property of the
  // ranking above, where one refinement pass amortizes across all 28 pairs.
  // The lone sweep still has to come in under dense with interpolated fill.
  EXPECT_LT(adapt.stats.full_solves, n_points);
  EXPECT_GT(adapt.stats.interp_points, 0u);
}

TEST(SweepFlow, AcceleratedFlowIsThreadCountInvariant) {
  core::ThreadPool::set_global_thread_count(1);
  BuckConverter ref_bc = make_buck_converter();
  const FlowResult ref =
      run_design_flow(ref_bc, layout_unfavorable(ref_bc), accel_options(60));
  const std::string want = fingerprint(ref_bc, ref);
  const std::uint64_t want_solves = ref.profile.count("sweep.full_solves");

  for (std::size_t lanes : {2u, 4u, 8u}) {
    core::ThreadPool::set_global_thread_count(lanes);
    BuckConverter bc = make_buck_converter();
    const FlowResult res =
        run_design_flow(bc, layout_unfavorable(bc), accel_options(60));
    EXPECT_EQ(want, fingerprint(bc, res)) << lanes << " lanes";
    EXPECT_EQ(want_solves, res.profile.count("sweep.full_solves"))
        << lanes << " lanes";
  }
  core::ThreadPool::set_global_thread_count(core::ThreadPool::default_thread_count());
}

// Kill the accelerated flow after each sweep-bearing stage and resume: the
// resumed result must be bit-identical to the uninterrupted accelerated run
// (the PR 4 checkpoint machinery, now carrying the sweep context).
TEST(SweepFlow, ResumeMidSweepIsBitIdentical) {
  BuckConverter ref_bc = make_buck_converter();
  const FlowResult ref =
      run_design_flow(ref_bc, layout_unfavorable(ref_bc), accel_options(60));
  ASSERT_TRUE(ref.complete);
  const std::string want = fingerprint(ref_bc, ref);

  for (const char* stage : {"sensitivity", "initial_prediction", "verification"}) {
    const std::string ckpt = temp_ckpt("sweep_resume.ckpt");
    std::remove(ckpt.c_str());
    FlowOptions opt = accel_options(60);
    opt.checkpoint_path = ckpt;
    opt.stop_after_stage = stage;
    BuckConverter bc1 = make_buck_converter();
    run_design_flow(bc1, layout_unfavorable(bc1), opt);

    FlowOptions resume_opt = accel_options(60);
    resume_opt.checkpoint_path = ckpt;
    BuckConverter bc2 = make_buck_converter();
    const FlowResult resumed =
        resume_design_flow(bc2, layout_unfavorable(bc2), resume_opt);
    EXPECT_TRUE(resumed.complete) << "resume after " << stage;
    EXPECT_EQ(want, fingerprint(bc2, resumed)) << "resume after " << stage;
    std::remove(ckpt.c_str());
  }
}

// A checkpoint written under acceleration must not resume into an exact run
// (or vice versa): the digest ties the checkpoint to the sweep options.
TEST(SweepFlow, ResumeWithDifferentSweepAccelIsRefused) {
  const std::string ckpt = temp_ckpt("sweep_digest.ckpt");
  std::remove(ckpt.c_str());
  FlowOptions opt = accel_options(30);
  opt.checkpoint_path = ckpt;
  opt.stop_after_stage = "sensitivity";
  BuckConverter bc1 = make_buck_converter();
  run_design_flow(bc1, layout_unfavorable(bc1), opt);

  FlowOptions exact;
  exact.sweep.n_points = 30;
  exact.checkpoint_path = ckpt;
  BuckConverter bc2 = make_buck_converter();
  const FlowResult res = resume_design_flow(bc2, layout_unfavorable(bc2), exact);
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics[0].stage, "flow.checkpoint");
  EXPECT_EQ(res.diagnostics[0].status.code(), core::ErrorCode::kFailedPrecondition);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace emi::flow
