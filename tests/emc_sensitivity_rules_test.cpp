#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/emi/lisn.hpp"
#include "src/emi/rules.hpp"
#include "src/emi/sensitivity.hpp"
#include "src/peec/component_model.hpp"

namespace emi::emc {
namespace {

// Pi filter testbed where coupling between the two capacitor ESLs is the
// known dominant path - the sensitivity analysis must find it.
ckt::Circuit pi_filter() {
  ckt::Circuit c;
  c.add_vsource("VB", "batt", "0", ckt::Waveform::dc(12.0));
  attach_lisn(c, "batt", "vin");
  c.add_inductor("L_C1", "vin", "c1a", 15e-9);
  c.add_resistor("R_C1", "c1a", "c1b", 0.03);
  c.add_capacitor("C_1", "c1b", "0", 1.5e-6);
  c.add_inductor("L_FLT", "vin", "nn", 47e-6);
  c.add_capacitor("C_PAR", "vin", "nn", 15e-12);
  c.add_resistor("R_DMP", "vin", "nn", 15e3);
  c.add_inductor("L_C2", "nn", "c2a", 15e-9);
  c.add_resistor("R_C2", "c2a", "c2b", 0.03);
  c.add_capacitor("C_2", "c2b", "0", 1.5e-6);
  c.add_vsource("VN", "nz", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_inductor("L_SRC", "nz", "nn", 20e-9);
  return c;
}

TrapezoidSpectrum ref_noise() {
  const double period = 1.0 / 300e3;
  return spectrum_params(ckt::Waveform::trapezoid(0.0, 12.0, period, 30e-9,
                                                  0.42 * period - 30e-9, 30e-9));
}

TEST(Sensitivity, RanksCapEslCouplingOnTop) {
  SensitivityOptions opt;
  opt.sweep.n_points = 40;
  opt.candidates = {"L_C1", "L_C2", "L_SRC", "L_FLT"};
  const auto ranked = rank_coupling_sensitivity(pi_filter(), "LISN_meas", ref_noise(),
                                                opt);
  ASSERT_EQ(ranked.size(), 6u);  // 4 choose 2
  // Ranking is sorted descending.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].max_delta_db, ranked[i].max_delta_db);
  }
  // The filter-bypassing pairs involving L_C1 dominate; the top pair must
  // couple the LISN-side capacitor to the noisy side.
  EXPECT_EQ(ranked.front().inductor_a < ranked.front().inductor_b
                ? ranked.front().inductor_a
                : ranked.front().inductor_b,
            "L_C1");
  EXPECT_GT(ranked.front().max_delta_db, 20.0);
  // Every entry reports nonnegative impact and mean <= max.
  for (const auto& s : ranked) {
    EXPECT_GE(s.max_delta_db, 0.0);
    EXPECT_LE(s.mean_delta_db, s.max_delta_db + 1e-12);
  }
}

TEST(Sensitivity, DefaultsToAllInductors) {
  SensitivityOptions opt;
  opt.sweep.n_points = 10;
  ckt::Circuit c;
  c.add_vsource("VN", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_inductor("LA", "in", "m", 1e-6);
  c.add_inductor("LB", "m", "out", 1e-6);
  c.add_resistor("RL", "out", "0", 50.0);
  const auto ranked = rank_coupling_sensitivity(c, "out", ref_noise(), opt);
  EXPECT_EQ(ranked.size(), 1u);
}

TEST(Sensitivity, ExistingCouplingsRestored) {
  ckt::Circuit c = pi_filter();
  c.add_coupling("K0", "L_C1", "L_C2", 0.02);
  SensitivityOptions opt;
  opt.sweep.n_points = 10;
  opt.candidates = {"L_C1", "L_C2"};
  rank_coupling_sensitivity(c, "LISN_meas", ref_noise(), opt);
  // The input circuit is taken by value; the original keeps its coupling.
  ASSERT_EQ(c.couplings().size(), 1u);
  EXPECT_DOUBLE_EQ(c.couplings()[0].k, 0.02);
}

TEST(Sensitivity, SignificantPairsFilter) {
  std::vector<CouplingSensitivity> ranked = {
      {"A", "B", 30.0, 10.0}, {"A", "C", 5.0, 1.0}, {"B", "C", 0.5, 0.1}};
  const auto sig = significant_pairs(ranked, 1.0);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig[1].inductor_b, "C");
}

TEST(Rules, EffectiveMinDistanceCosLaw) {
  EXPECT_DOUBLE_EQ(effective_min_distance(Millimeters{20.0}, 0.0).raw(), 20.0);
  EXPECT_NEAR(effective_min_distance(Millimeters{20.0}, 60.0).raw(), 10.0, 1e-12);
  EXPECT_NEAR(effective_min_distance(Millimeters{20.0}, 90.0).raw(), 0.0, 1e-12);
  // Axis folding: 180 deg is the same axis, 120 folds to 60.
  EXPECT_DOUBLE_EQ(effective_min_distance(Millimeters{20.0}, 180.0).raw(), 20.0);
  EXPECT_NEAR(effective_min_distance(Millimeters{20.0}, 120.0).raw(), 10.0, 1e-12);
}

TEST(Rules, DeriverProducesOrderedRuleTable) {
  const peec::ComponentFieldModel c1 = peec::x_capacitor("C1");
  const peec::ComponentFieldModel c2 = peec::x_capacitor("C2");
  const peec::ComponentFieldModel lf = peec::bobbin_coil("LF");
  const peec::CouplingExtractor ex;
  const RuleDeriver deriver(ex);

  const MinDistanceRule r = deriver.derive(c1, c2);
  EXPECT_EQ(r.comp_a, "C1");
  EXPECT_EQ(r.comp_b, "C2");
  EXPECT_GT(r.pemd.raw(), 5.0);
  EXPECT_LT(r.pemd.raw(), 100.0);
  EXPECT_DOUBLE_EQ(r.k_threshold, 0.01);

  const auto all = deriver.derive_all({&c1, &c2, &lf});
  EXPECT_EQ(all.size(), 3u);  // 3 choose 2
}

TEST(Rules, StricterThresholdLargerDistance) {
  const peec::ComponentFieldModel c1 = peec::x_capacitor("C1");
  const peec::ComponentFieldModel c2 = peec::x_capacitor("C2");
  const peec::CouplingExtractor ex;
  const RuleDeriver loose(ex, {0.05, Millimeters{2.0}, Millimeters{200.0}, Millimeters{0.25}});
  const RuleDeriver strict(ex, {0.005, Millimeters{2.0}, Millimeters{200.0}, Millimeters{0.25}});
  EXPECT_GT(strict.derive(c1, c2).pemd.raw(), loose.derive(c1, c2).pemd.raw());
}

TEST(GeometricCoupling, RanksCloseParallelPairFirst) {
  const peec::ComponentFieldModel cx1 = peec::x_capacitor("CX1");
  const peec::ComponentFieldModel cx2 = peec::x_capacitor("CX2");
  const peec::ComponentFieldModel cx3 = peec::x_capacitor("CX3");
  const std::vector<peec::PlacedModel> models = {
      {&cx1, {{0.0, 0.0, 0.0}, 0.0}},
      {&cx2, {{18.0, 0.0, 0.0}, 0.0}},   // close, parallel: strong pair
      {&cx3, {{90.0, 60.0, 0.0}, 0.0}},  // far away: weak against both
  };
  const std::vector<std::string> names = {"L_C1", "L_C2", "L_C3"};
  const peec::CouplingExtractor ex;
  const std::vector<GeometricCoupling> ranked =
      rank_geometric_coupling(ex, models, names);
  ASSERT_EQ(ranked.size(), 3u);  // n(n-1)/2
  EXPECT_EQ(ranked[0].inductor_a, "L_C1");
  EXPECT_EQ(ranked[0].inductor_b, "L_C2");
  EXPECT_GT(ranked[0].k_abs, ranked[1].k_abs);
  EXPECT_GT(ranked[0].k_abs, 0.0);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].k_abs, ranked[i].k_abs);  // sorted descending
  }
  // |k| matches the extractor's own per-pair coupling factor.
  EXPECT_NEAR(ranked[0].k_abs, std::fabs(ex.coupling_factor(models[0], models[1])),
              1e-15);
}

TEST(GeometricCoupling, ValidatesAndHandlesDegenerateInput) {
  const peec::ComponentFieldModel cx1 = peec::x_capacitor("CX1");
  const std::vector<peec::PlacedModel> one = {{&cx1, {{0.0, 0.0, 0.0}, 0.0}}};
  const std::vector<std::string> one_name = {"L_C1"};
  const peec::CouplingExtractor ex;
  EXPECT_TRUE(rank_geometric_coupling(ex, one, one_name).empty());
  const std::vector<std::string> wrong = {"A", "B"};
  EXPECT_THROW((void)rank_geometric_coupling(ex, one, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace emi::emc
