#include <gtest/gtest.h>

#include <cmath>

#include "src/ckt/ac.hpp"
#include "src/emi/cispr25.hpp"
#include "src/emi/lisn.hpp"
#include "src/numeric/stats.hpp"

namespace emi::emc {
namespace {

TEST(Lisn, AttachCreatesNetworkAndMeasNode) {
  ckt::Circuit c;
  c.add_vsource("VB", "batt", "0", ckt::Waveform::dc(12.0));
  const std::string meas = attach_lisn(c, "batt", "dut");
  EXPECT_EQ(meas, "LISN_meas");
  EXPECT_EQ(c.inductors().size(), 1u);
  EXPECT_EQ(c.capacitors().size(), 1u);
  EXPECT_EQ(c.resistors().size(), 2u);
  // Two LISNs coexist with different prefixes.
  attach_lisn(c, "batt", "dut2", "LISN2");
  EXPECT_EQ(c.inductors().size(), 2u);
}

TEST(Lisn, HighFrequencyNoiseReachesReceiver) {
  // Inject noise at the DUT node; at HF the measured level approaches the
  // injected level (coupling cap transparent, AN inductor blocks the
  // battery path).
  ckt::Circuit c;
  c.add_vsource("VB", "batt", "0", ckt::Waveform::dc(12.0));
  const std::string meas = attach_lisn(c, "batt", "dut");
  c.add_vsource("VN", "nz", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RN", "nz", "dut", 10.0);
  const ckt::AcSolution sol = ckt::ac_solve(c, {100e3, 10e6, 100e6});
  const double lo = std::abs(sol.voltage(meas, 0));
  const double hi = std::abs(sol.voltage(meas, 2));
  EXPECT_GT(hi, 0.5);      // most of the source appears at the receiver
  EXPECT_GT(hi, lo);       // and more at HF than at LF
}

TEST(Lisn, CouplingGainRises) {
  EXPECT_LT(lisn_coupling_gain(units::Hertz{10e3}), lisn_coupling_gain(units::Hertz{1e6}));
  EXPECT_NEAR(lisn_coupling_gain(units::Hertz{100e6}), 1.0, 1e-3);
}

TEST(Cispr25, BandLookup) {
  // FM band, class 3: 62 - 2*8 = 46 dBuV peak.
  const auto fm = cispr25_limit_dbuv(100e6, 3);
  ASSERT_TRUE(fm.has_value());
  EXPECT_DOUBLE_EQ(*fm, 46.0);
  // Between bands: no limit.
  EXPECT_FALSE(cispr25_limit_dbuv(3e6, 3).has_value());
  // LW band, class 1 = full 110.
  EXPECT_DOUBLE_EQ(*cispr25_limit_dbuv(0.2e6, 1), 110.0);
  // Class 5 is 32 dB below class 1.
  EXPECT_DOUBLE_EQ(*cispr25_limit_dbuv(0.2e6, 5), 110.0 - 32.0);
}

TEST(Cispr25, AverageDetectorTenBelowPeak) {
  const auto pk = cispr25_limit_dbuv(1e6, 3, Detector::kPeak);
  const auto avg = cispr25_limit_dbuv(1e6, 3, Detector::kAverage);
  ASSERT_TRUE(pk && avg);
  EXPECT_DOUBLE_EQ(*pk - *avg, 10.0);
}

TEST(Cispr25, ClassValidation) {
  EXPECT_THROW(cispr25_limit_dbuv(1e6, 0), std::invalid_argument);
  EXPECT_THROW(cispr25_limit_dbuv(1e6, 6), std::invalid_argument);
}

TEST(Cispr25, BandsAreOrderedAndDisjoint) {
  const auto& bands = cispr25_bands();
  ASSERT_GE(bands.size(), 4u);
  for (std::size_t i = 1; i < bands.size(); ++i) {
    EXPECT_GE(bands[i].f_lo_hz, bands[i - 1].f_hi_hz);
  }
}

TEST(LimitMargin, CountsViolations) {
  // Two in-band points: one passing, one failing; one out-of-band point.
  const std::vector<double> freqs{0.2e6, 1e6, 3e6};
  // Class 3 limits: LW 94, MW 70.
  const std::vector<double> levels{80.0, 75.0, 200.0};
  const LimitMargin m = limit_margin(freqs, levels, 3);
  EXPECT_EQ(m.violations, 1u);
  EXPECT_DOUBLE_EQ(m.worst_margin_db, 70.0 - 75.0);
  EXPECT_DOUBLE_EQ(m.worst_freq_hz, 1e6);
  EXPECT_THROW(limit_margin(freqs, {1.0}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace emi::emc
