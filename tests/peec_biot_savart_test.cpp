#include "src/peec/biot_savart.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/peec/partial_inductance.hpp"
#include "src/peec/winding.hpp"

namespace emi::peec {
namespace {

// Near the middle of a long straight segment the field approaches the
// infinite-wire value B = mu0*I/(2*pi*rho).
TEST(SegmentField, LongWireLimit) {
  const Segment s{{-500, 0, 0}, {500, 0, 0}, 0.5};
  const double rho = 10.0;  // mm
  const Vec3 b = segment_field(s, {0.0, rho, 0.0}, Ampere{2.0});
  const double expected = kMu0 * 2.0 / (2.0 * geom::kPi * rho * 1e-3);
  EXPECT_NEAR(b.norm() / expected, 1.0, 1e-3);
  // Direction: current +x, point at +y -> B along +z (right-hand rule).
  EXPECT_GT(b.z, 0.0);
  EXPECT_NEAR(b.x, 0.0, 1e-15);
}

TEST(SegmentField, FiniteSegmentHalfAngleFormula) {
  // Point next to one end of the segment sees half the symmetric field
  // of a segment extending to both sides.
  const Segment full{{-100, 0, 0}, {100, 0, 0}, 0.2};
  const Segment half{{0, 0, 0}, {100, 0, 0}, 0.2};
  const Vec3 bf = segment_field(full, {0, 5, 0});
  const Vec3 bh = segment_field(half, {0, 5, 0});
  EXPECT_NEAR(bh.norm() / bf.norm(), 0.5, 1e-3);
}

TEST(SegmentField, OnAxisIsZero) {
  const Segment s{{0, 0, 0}, {10, 0, 0}, 0.2};
  EXPECT_NEAR(segment_field(s, {20.0, 0.0, 0.0}).norm(), 0.0, 1e-18);
  EXPECT_NEAR(segment_field(s, {-5.0, 0.0, 0.0}).norm(), 0.0, 1e-18);
}

TEST(SegmentField, FieldScalesWithCurrentAndWeight) {
  Segment s{{0, 0, 0}, {50, 0, 0}, 0.3};
  const Vec3 b1 = segment_field(s, {25, 8, 0}, Ampere{1.0});
  const Vec3 b2 = segment_field(s, {25, 8, 0}, Ampere{3.0});
  EXPECT_NEAR(b2.norm() / b1.norm(), 3.0, 1e-12);
  s.weight = 2.0;
  const Vec3 bw = segment_field(s, {25, 8, 0}, Ampere{1.0});
  EXPECT_NEAR(bw.norm() / b1.norm(), 2.0, 1e-12);
}

// Circular loop center: B = mu0*I/(2R). A 32-gon ring gets very close.
TEST(PathField, LoopCenterMatchesAnalytic) {
  const double R = 10.0;
  const SegmentPath loop = ring({0, 0, 0}, {0, 0, 1}, Millimeters{R}, 32, Millimeters{0.2});
  const Vec3 b = path_field(loop, {0, 0, 0}, Ampere{1.5});
  const double expected = kMu0 * 1.5 / (2.0 * R * 1e-3);
  EXPECT_NEAR(b.norm() / expected, 1.0, 0.01);
  EXPECT_NEAR(std::fabs(b.z) / b.norm(), 1.0, 1e-9);  // field along the axis
}

// On-axis field of a loop falls off as (1 + (z/R)^2)^(-3/2).
TEST(PathField, LoopAxisFalloff) {
  const double R = 10.0;
  const SegmentPath loop = ring({0, 0, 0}, {0, 0, 1}, Millimeters{R}, 32, Millimeters{0.2});
  const double b0 = path_field(loop, {0, 0, 0}).norm();
  const double bz = path_field(loop, {0, 0, 2 * R}).norm();
  const double expected_ratio = std::pow(1.0 + 4.0, -1.5);
  EXPECT_NEAR(bz / b0, expected_ratio, 0.01);
}

// Dipole limit: far from the loop along the axis, B ~ mu0*m/(2*pi*z^3).
TEST(PathField, DipoleFarField) {
  const double R = 5.0;
  const SegmentPath loop = ring({0, 0, 0}, {0, 0, 1}, Millimeters{R}, 32, Millimeters{0.2});
  const double z = 100.0;
  const double b = path_field(loop, {0, 0, z}).norm();
  // Dipole moment of the 32-gon: I times the polygon area (slightly below
  // the circumscribed circle's pi*R^2).
  const double n = 32.0;
  const double moment = 0.5 * n * R * R * std::sin(2.0 * geom::kPi / n) * 1e-6;
  const double expected = kMu0 * moment / (2.0 * geom::kPi * std::pow(z * 1e-3, 3));
  EXPECT_NEAR(b / expected, 1.0, 0.01);
}

TEST(FieldMap, GridShapeAndSymmetry) {
  const SegmentPath loop = ring({0, 0, 0}, {0, 0, 1}, Millimeters{8.0}, 24, Millimeters{0.3});
  const auto map = field_map(loop, Millimeters{-20}, Millimeters{20}, Millimeters{-20}, Millimeters{20}, Millimeters{5.0}, 9, 9);
  ASSERT_EQ(map.size(), 81u);
  // The loop is symmetric: |B| at (x, y) equals |B| at (-x, -y).
  const auto at = [&](std::size_t ix, std::size_t iy) {
    return map[iy * 9 + ix].b.norm();
  };
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(at(i, 4), at(8 - i, 4), 1e-12);
    EXPECT_NEAR(at(4, i), at(4, 8 - i), 1e-12);
  }
}

}  // namespace
}  // namespace emi::peec
