#include <gtest/gtest.h>

#include "src/place/baseline.hpp"
#include "src/place/drc.hpp"
#include "src/place/metrics.hpp"

namespace emi::place {
namespace {

Design rule_design(std::size_t n) {
  Design d;
  d.set_clearance(Millimeters{1.0});
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {120, 90}))});
  for (std::size_t i = 0; i < n; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = 12;
    c.depth_mm = 8;
    c.height_mm = 5;
    c.axis_deg = 90.0;
    d.add_component(c);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d.add_emd_rule("C" + std::to_string(i), "C" + std::to_string(j), Millimeters{20.0});
    }
  }
  return d;
}

TEST(Baseline, TrialAndErrorIgnoresEmd) {
  Design d = rule_design(6);
  Layout l = Layout::unplaced(d);
  BaselineOptions opt;
  opt.mode = BaselineMode::kTrialAndError;
  opt.seed = 3;
  const PlaceStats stats = baseline_place(d, l, opt);
  EXPECT_EQ(stats.failed, 0u);
  const DrcReport r = DrcEngine(d).check(l);
  // Geometric rules hold; EMD rules were never considered and (with 15
  // pairwise 20 mm rules crammed at random) essentially always violated.
  EXPECT_EQ(r.count(ViolationKind::kOverlap), 0u);
  EXPECT_EQ(r.count(ViolationKind::kClearance), 0u);
  EXPECT_EQ(r.count(ViolationKind::kOutsideArea), 0u);
  EXPECT_GT(r.count(ViolationKind::kEmd), 0u);
}

TEST(Baseline, RandomLegalHonorsEmd) {
  Design d = rule_design(5);
  Layout l = Layout::unplaced(d);
  BaselineOptions opt;
  opt.mode = BaselineMode::kRandomLegal;
  opt.seed = 11;
  const PlaceStats stats = baseline_place(d, l, opt);
  EXPECT_EQ(stats.failed, 0u);
  const DrcReport r = DrcEngine(d).check(l);
  EXPECT_EQ(r.count(ViolationKind::kEmd), 0u);
  EXPECT_EQ(r.count(ViolationKind::kOverlap), 0u);
}

TEST(Baseline, DeterministicPerSeed) {
  Design d = rule_design(4);
  Layout l1 = Layout::unplaced(d);
  Layout l2 = Layout::unplaced(d);
  BaselineOptions opt;
  opt.seed = 77;
  baseline_place(d, l1, opt);
  baseline_place(d, l2, opt);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(l1.placements[i].position, l2.placements[i].position);
  }
  Layout l3 = Layout::unplaced(d);
  opt.seed = 78;
  baseline_place(d, l3, opt);
  bool any_diff = false;
  for (std::size_t i = 0; i < 4; ++i) {
    any_diff |= !(l3.placements[i].position == l1.placements[i].position);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Baseline, PreplacedKept) {
  Design d = rule_design(3);
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{60, 45}, 0.0, 0, true};
  baseline_place(d, l);
  EXPECT_EQ(l.placements[0].position, (geom::Vec2{60, 45}));
}

TEST(Metrics, CountsAndAreas) {
  Design d = rule_design(2);
  d.add_net({"n", {{"C0", ""}, {"C1", ""}}, {}});
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  l.placements[1] = {{50, 40}, 0.0, 0, true};
  const LayoutMetrics m = compute_metrics(d, l);
  EXPECT_DOUBLE_EQ(m.total_hpwl_mm, 70.0);
  EXPECT_DOUBLE_EQ(m.footprint_area_mm2, 2.0 * 96.0);
  EXPECT_GT(m.bounding_area_mm2, m.footprint_area_mm2);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LT(m.utilization, 1.0);
  EXPECT_EQ(m.unplaced, 0u);
  // Distance 50 vs EMD 20: slack 30.
  EXPECT_NEAR(m.min_emd_slack_mm, 30.0, 1e-9);
  EXPECT_EQ(m.emd_violations, 0u);
}

TEST(Metrics, ViolationsCounted) {
  Design d = rule_design(2);
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  l.placements[1] = {{25, 10}, 0.0, 0, true};  // 15 < 20
  const LayoutMetrics m = compute_metrics(d, l);
  EXPECT_EQ(m.emd_violations, 1u);
  EXPECT_LT(m.min_emd_slack_mm, 0.0);
}

TEST(Metrics, UnplacedCounted) {
  Design d = rule_design(3);
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  const LayoutMetrics m = compute_metrics(d, l);
  EXPECT_EQ(m.unplaced, 2u);
}

TEST(GroupBoxes, ComputedPerGroup) {
  Design d = rule_design(4);
  d.components()[0].group = "g1";
  d.components()[1].group = "g1";
  d.components()[2].group = "g2";
  Layout l = Layout::unplaced(d);
  l.placements[0] = {{10, 10}, 0.0, 0, true};
  l.placements[1] = {{30, 10}, 0.0, 0, true};
  l.placements[2] = {{80, 60}, 0.0, 0, true};
  l.placements[3] = {{100, 60}, 0.0, 0, true};  // ungrouped, ignored
  const auto boxes = group_boxes(d, l);
  ASSERT_EQ(boxes.size(), 2u);
  EXPECT_EQ(boxes[0].group, "g1");
  EXPECT_EQ(boxes[0].members, 2u);
  EXPECT_EQ(boxes[1].members, 1u);
  EXPECT_FALSE(boxes[0].bbox.overlaps(boxes[1].bbox));
}

}  // namespace
}  // namespace emi::place
