#include "src/geom/vec.hpp"

#include <gtest/gtest.h>

#include "src/geom/angle.hpp"

namespace emi::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).dot({0, 1}), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{2, 3}).dot({4, 5}), 23.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).cross({0, 1}), 1.0);   // CCW positive
  EXPECT_DOUBLE_EQ((Vec2{0, 1}).cross({1, 0}), -1.0);  // CW negative
}

TEST(Vec2, NormAndNormalize) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm2(), 25.0);
  const Vec2 n = Vec2{3, 4}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector stays zero
}

TEST(Vec2, Perp) {
  const Vec2 v{2, 1};
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
  EXPECT_DOUBLE_EQ(v.cross(v.perp()), v.norm2());  // perp is 90 deg CCW
}

TEST(Vec2, Distance) { EXPECT_DOUBLE_EQ(distance(Vec2{0, 0}, Vec2{3, 4}), 5.0); }

TEST(Vec3, CrossProduct) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(x.cross(x), Vec3{});
}

TEST(Vec3, NormAndDot) {
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 2}).norm(), 3.0);
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 3}).dot({4, 5, 6}), 32.0);
}

TEST(Angle, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
}

TEST(Angle, NormalizeDeg) {
  EXPECT_DOUBLE_EQ(normalize_deg(370.0), 10.0);
  EXPECT_DOUBLE_EQ(normalize_deg(-10.0), 350.0);
  EXPECT_DOUBLE_EQ(normalize_deg(720.0), 0.0);
}

TEST(Angle, AngleBetween) {
  EXPECT_DOUBLE_EQ(angle_between_deg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_between_deg(0.0, 180.0), 180.0);
}

// Magnetic axes are undirected: 0 and 180 deg are the same axis.
TEST(Angle, AxisAngleFolds) {
  EXPECT_DOUBLE_EQ(axis_angle_deg(0.0, 180.0), 0.0);
  EXPECT_DOUBLE_EQ(axis_angle_deg(0.0, 90.0), 90.0);
  EXPECT_DOUBLE_EQ(axis_angle_deg(0.0, 270.0), 90.0);
  EXPECT_DOUBLE_EQ(axis_angle_deg(45.0, 225.0), 0.0);
  EXPECT_DOUBLE_EQ(axis_angle_deg(10.0, 150.0), 40.0);
}

TEST(Angle, Rotate) {
  const Vec2 r = rotate_deg({1.0, 0.0}, 90.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  const Vec3 r3 = rotate_z({1.0, 0.0, 5.0}, kPi);
  EXPECT_NEAR(r3.x, -1.0, 1e-12);
  EXPECT_NEAR(r3.y, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r3.z, 5.0);  // z untouched
}

// Property sweep: rotation preserves length for arbitrary angles.
class RotatePreservesNorm : public ::testing::TestWithParam<double> {};

TEST_P(RotatePreservesNorm, NormInvariant) {
  const Vec2 v{3.7, -1.2};
  EXPECT_NEAR(rotate_deg(v, GetParam()).norm(), v.norm(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Angles, RotatePreservesNorm,
                         ::testing::Values(0.0, 17.0, 90.0, 123.4, 180.0, 271.0,
                                           359.0, -45.0, 720.5));

}  // namespace
}  // namespace emi::geom
