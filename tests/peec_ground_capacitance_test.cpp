#include <gtest/gtest.h>

#include <cmath>

#include "src/peec/capacitance.hpp"
#include "src/peec/component_model.hpp"
#include "src/peec/ground_plane.hpp"

namespace emi::peec {
namespace {

TEST(GroundPlane, MirrorPoint) {
  const Vec3 p{1.0, 2.0, 5.0};
  EXPECT_EQ(mirror_point(p, 0.0), (Vec3{1.0, 2.0, -5.0}));
  EXPECT_EQ(mirror_point(p, 2.0), (Vec3{1.0, 2.0, -1.0}));
}

TEST(GroundPlane, ImagePathDoublesSegmentsWithNegatedWeight) {
  const SegmentPath loop = rectangular_loop(Millimeters{10.0}, Millimeters{5.0}, Millimeters{0.3});
  // Loop sits at z >= 0; mirror across z = 0.
  const SegmentPath mirrored = with_ground_plane(loop, 0.0);
  ASSERT_EQ(mirrored.segments.size(), 2 * loop.segments.size());
  for (std::size_t i = 0; i < loop.segments.size(); ++i) {
    const Segment& img = mirrored.segments[loop.segments.size() + i];
    EXPECT_DOUBLE_EQ(img.weight, -loop.segments[i].weight);
    EXPECT_DOUBLE_EQ(img.a.z, -loop.segments[i].a.z);
  }
}

TEST(GroundPlane, ThrowsOnConductorBelowPlane) {
  SegmentPath bad;
  bad.segments = {{{0, 0, -1.0}, {10, 0, 2.0}, 0.3, 1.0}};
  EXPECT_THROW(with_ground_plane(bad, 0.0), std::invalid_argument);
}

TEST(GroundPlane, FluxConfinementRaisesCoplanarLoopCoupling) {
  // Two upright capacitor loops standing on a ground plane: the plane
  // forbids normal flux at its surface, so stray flux that would have
  // closed underneath is squeezed sideways - through the neighbour. The
  // coupling factor therefore RISES versus free space (and the derived
  // minimum distance rules get stricter). This is why the paper lists the
  // presence of shielding planes among the factors the minimum distance
  // depends on.
  const ComponentFieldModel ca = x_capacitor("CA");
  const ComponentFieldModel cb = x_capacitor("CB");
  const CouplingExtractor free_space;
  const GroundedCouplingExtractor grounded(0.0);
  for (double d : {25.0, 40.0, 60.0}) {
    const double k_free = std::fabs(free_space.coupling_at(ca, cb, Millimeters{d}));
    const double k_gnd = std::fabs(grounded.coupling_at(ca, cb, Millimeters{d}));
    EXPECT_GT(k_gnd, k_free) << "d = " << d;
    EXPECT_LT(k_gnd, 10.0 * k_free) << "d = " << d;  // bounded enhancement
  }
}

TEST(GroundPlane, SelfInductanceReduced) {
  const ComponentFieldModel cap = x_capacitor("C");
  const CouplingExtractor free_space;
  const GroundedCouplingExtractor grounded(0.0);
  const double l_free = free_space.self_inductance(cap).raw();
  const double l_gnd = grounded.self_inductance(cap).raw();
  EXPECT_LT(l_gnd, l_free);
  EXPECT_GT(l_gnd, 0.2 * l_free);  // but not unphysically small
}

TEST(GroundPlane, FarPlaneApproachesFreeSpace) {
  const ComponentFieldModel ca = x_capacitor("CA");
  const ComponentFieldModel cb = x_capacitor("CB");
  const CouplingExtractor free_space;
  // A plane far below the components barely matters.
  const GroundedCouplingExtractor far_plane(-500.0);
  const double k_free = free_space.coupling_at(ca, cb, Millimeters{30.0});
  const double k_far = far_plane.coupling_at(ca, cb, Millimeters{30.0});
  EXPECT_NEAR(k_far / k_free, 1.0, 0.02);
}

TEST(GroundPlane, MutualReciprocity) {
  const ComponentFieldModel ca = x_capacitor("CA");
  const ComponentFieldModel cb = bobbin_coil("LB");
  const GroundedCouplingExtractor g(0.0);
  const PlacedModel pa{&ca, {{0, 0, 0}, 0.0}};
  const PlacedModel pb{&cb, {{30, 5, 0}, 20.0}};
  EXPECT_NEAR(g.mutual(pa, pb).raw(), g.mutual(pb, pa).raw(), 1e-15);
}

TEST(Capacitance, EquivalentRadius) {
  // A cube of side a has surface 6a^2 -> r = a*sqrt(6/(4pi)) ~ 0.691a.
  const double r = body_equivalent_radius(Millimeters{10.0}, Millimeters{10.0}, Millimeters{10.0}).raw();
  EXPECT_NEAR(r, 10.0 * std::sqrt(6.0 / (4.0 * std::numbers::pi)), 1e-9);
  EXPECT_THROW(body_equivalent_radius(Millimeters{0.0}, Millimeters{1.0}, Millimeters{1.0}).raw(), std::invalid_argument);
}

TEST(Capacitance, SphereMutualFallsAsOneOverD) {
  const double c20 = sphere_mutual_capacitance(Millimeters{5.0}, Millimeters{5.0}, Millimeters{20.0}).raw();
  const double c40 = sphere_mutual_capacitance(Millimeters{5.0}, Millimeters{5.0}, Millimeters{40.0}).raw();
  EXPECT_NEAR(c20 / c40, 2.0, 1e-9);
  // Plausible magnitude: two 5 mm spheres at 20 mm are a fraction of a pF.
  EXPECT_GT(c20, 0.05e-12);
  EXPECT_LT(c20, 2e-12);
}

TEST(Capacitance, ClampsAtTouchingSpheres) {
  const double touching = sphere_mutual_capacitance(Millimeters{5.0}, Millimeters{5.0}, Millimeters{10.0}).raw();
  const double closer = sphere_mutual_capacitance(Millimeters{5.0}, Millimeters{5.0}, Millimeters{2.0}).raw();
  EXPECT_DOUBLE_EQ(touching, closer);
  EXPECT_THROW(sphere_mutual_capacitance(Millimeters{0.0}, Millimeters{5.0}, Millimeters{10.0}),
               std::invalid_argument);
}

TEST(Capacitance, BodyHelper) {
  const Body a{{0, 0, 5}, Millimeters{6.0}};
  const Body b{{30, 0, 5}, Millimeters{4.0}};
  EXPECT_NEAR(body_capacitance(a, b).raw(), sphere_mutual_capacitance(Millimeters{6.0}, Millimeters{4.0}, Millimeters{30.0}).raw(), 1e-20);
}

TEST(Capacitance, CornerFrequency) {
  // 1 pF against 50 ohm: ~3.2 GHz; 100 pF: ~32 MHz.
  EXPECT_NEAR(capacitive_corner(Farad{1e-12}).raw() / 1e9, 3.18, 0.01);
  EXPECT_NEAR(capacitive_corner(Farad{100e-12}).raw() / 1e6, 31.8, 0.1);
  EXPECT_THROW(capacitive_corner(Farad{0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace emi::peec
