#include "src/place/drc.hpp"

#include <gtest/gtest.h>

namespace emi::place {
namespace {

// Small fixture: 100 x 60 board, three components, one EMD rule.
class DrcTest : public ::testing::Test {
 protected:
  DrcTest() {
    d_.set_clearance(Millimeters{1.0});
    d_.add_area({"board", 0,
                 geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 60}))});
    Component c;
    c.width_mm = 10;
    c.depth_mm = 10;
    c.height_mm = 5;
    c.axis_deg = 90.0;
    c.name = "A";
    d_.add_component(c);
    c.name = "B";
    d_.add_component(c);
    c.name = "C";
    d_.add_component(c);
    d_.add_emd_rule("A", "B", Millimeters{30.0});
    layout_ = Layout::unplaced(d_);
    place("A", {20, 20}, 0.0);
    place("B", {70, 20}, 0.0);
    place("C", {20, 45}, 0.0);
  }

  void place(const std::string& name, geom::Vec2 pos, double rot) {
    layout_.placements[d_.component_index(name)] = {pos, rot, 0, true};
  }

  DrcReport check() { return DrcEngine(d_).check(layout_); }

  Design d_;
  Layout layout_;
};

TEST_F(DrcTest, CleanLayout) {
  const DrcReport r = check();
  EXPECT_TRUE(r.clean()) << r.violations.size();
  ASSERT_EQ(r.emd_status.size(), 1u);
  EXPECT_TRUE(r.emd_status[0].ok);
  EXPECT_DOUBLE_EQ(r.emd_status[0].distance.raw(), 50.0);
}

TEST_F(DrcTest, UnplacedComponent) {
  layout_.placements[0].placed = false;
  const DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kUnplaced), 1u);
  // The EMD status row for an unplaced pair reports not-ok.
  EXPECT_FALSE(r.emd_status[0].ok);
}

TEST_F(DrcTest, OverlapDetected) {
  place("B", {25, 22}, 0.0);
  const DrcReport r = check();
  EXPECT_GE(r.count(ViolationKind::kOverlap), 1u);
}

TEST_F(DrcTest, ClearanceDetected) {
  place("C", {20, 30.5}, 0.0);  // gap = 0.5 < 1.0 clearance
  const DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kClearance), 1u);
  EXPECT_EQ(r.count(ViolationKind::kOverlap), 0u);
}

TEST_F(DrcTest, OutsideAreaDetected) {
  place("C", {98, 45}, 0.0);  // footprint sticks out on the right
  const DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kOutsideArea), 1u);
}

TEST_F(DrcTest, KeepoutWithZOffset) {
  d_.add_keepout({"rib", 0, {geom::Rect::from_corners({15, 40}, {25, 50}), 8.0, 100.0}});
  // C (height 5) slides under the rib.
  EXPECT_TRUE(check().clean());
  // A tall component does not.
  d_.components()[d_.component_index("C")].height_mm = 12.0;
  const DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kKeepout), 1u);
}

TEST_F(DrcTest, EmdViolationAndRotationCure) {
  place("B", {40, 20}, 0.0);  // 20 mm < 30 mm rule, parallel axes
  DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kEmd), 1u);
  EXPECT_FALSE(r.emd_status[0].ok);
  // Rotating B by 90 degrees makes the axes perpendicular: EMD -> 0.
  place("B", {40, 20}, 90.0);
  r = check();
  EXPECT_EQ(r.count(ViolationKind::kEmd), 0u);
  EXPECT_TRUE(r.emd_status[0].ok);
  EXPECT_NEAR(r.emd_status[0].effective_emd.raw(), 0.0, 1e-9);
}

TEST_F(DrcTest, DifferentBoardsDecouple) {
  d_.set_board_count(2);
  d_.add_area({"board2", 1,
               geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 60}))});
  layout_.placements[d_.component_index("B")] = {{21, 20}, 0.0, 1, true};
  const DrcReport r = check();
  // Same x/y proximity but different boards: no overlap, no EMD violation.
  EXPECT_EQ(r.count(ViolationKind::kOverlap), 0u);
  EXPECT_EQ(r.count(ViolationKind::kEmd), 0u);
  EXPECT_TRUE(r.emd_status[0].ok);
}

TEST_F(DrcTest, GroupSplitDetected) {
  d_.components()[0].group = "g1";
  d_.components()[1].group = "g1";
  d_.components()[2].group = "g2";
  // C at (45, 20) sits between A and B: its bbox overlaps g1's bbox.
  place("C", {45, 20}, 0.0);
  const DrcReport r = check();
  EXPECT_EQ(r.count(ViolationKind::kGroupSplit), 1u);
  // Moving C away separates the group boxes.
  place("C", {20, 48}, 0.0);
  EXPECT_EQ(check().count(ViolationKind::kGroupSplit), 0u);
}

TEST_F(DrcTest, NetLengthChecked) {
  d_.add_net({"n1", {{"A", ""}, {"B", ""}}, 40.0});
  const DrcReport r = check();  // HPWL = 50 > 40
  EXPECT_EQ(r.count(ViolationKind::kNetLength), 1u);
  EXPECT_DOUBLE_EQ(r.violations[0].actual, 50.0);
}

TEST_F(DrcTest, CheckComponentScopesToOne) {
  place("B", {40, 20}, 0.0);  // EMD violation A <-> B
  const DrcEngine engine(d_);
  const auto va = engine.check_component(layout_, d_.component_index("A"));
  EXPECT_EQ(va.size(), 1u);
  const auto vc = engine.check_component(layout_, d_.component_index("C"));
  EXPECT_TRUE(vc.empty());  // C is not involved
}

TEST_F(DrcTest, SizeMismatchThrows) {
  Layout bad;
  bad.placements.resize(1);
  EXPECT_THROW(DrcEngine(d_).check(bad), std::invalid_argument);
}

TEST(DrcToString, AllKindsNamed) {
  for (ViolationKind k :
       {ViolationKind::kUnplaced, ViolationKind::kOverlap, ViolationKind::kClearance,
        ViolationKind::kOutsideArea, ViolationKind::kKeepout, ViolationKind::kEmd,
        ViolationKind::kGroupSplit, ViolationKind::kNetLength}) {
    EXPECT_FALSE(to_string(k).empty());
    EXPECT_NE(to_string(k), "?");
  }
}

}  // namespace
}  // namespace emi::place
