#include "src/ckt/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace emi::ckt {
namespace {

TEST(Transient, RcStepResponse) {
  // v(t) = V * (1 - exp(-t/RC)), RC = 1 ms.
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(1.0));
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_capacitor("C1", "out", "0", 1e-6);
  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.dt = 1e-6;
  const TransientResult tr = transient_solve(c, opt);
  const double tau = 1e-3;
  for (double t : {0.5e-3, 1e-3, 2e-3, 4e-3}) {
    const auto step = static_cast<std::size_t>(t / opt.dt);
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(tr.voltage("out", step), expected, 2e-3) << "t = " << t;
  }
}

TEST(Transient, RlCurrentRise) {
  // i(t) = (V/R)(1 - exp(-t R/L)).
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(10.0));
  c.add_resistor("R1", "in", "a", 10.0);
  c.add_inductor("L1", "a", "0", 10e-3);
  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.dt = 1e-6;
  const TransientResult tr = transient_solve(c, opt);
  const double tau = 1e-3;
  for (double t : {1e-3, 3e-3}) {
    const auto step = static_cast<std::size_t>(t / opt.dt);
    EXPECT_NEAR(tr.inductor_current("L1", step), (1.0 - std::exp(-t / tau)), 3e-3);
  }
}

TEST(Transient, LcOscillationFrequencyAndAmplitude) {
  // Undriven LC with an initial kick from a step source through a resistor;
  // check the ring frequency of the lightly damped RLC.
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(1.0));
  c.add_resistor("R1", "in", "a", 5.0);
  c.add_inductor("L1", "a", "b", 1e-3);
  c.add_capacitor("C1", "b", "0", 1e-6);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 2e-7;
  const TransientResult tr = transient_solve(c, opt);
  // Find zero crossings of v(b) - 1 (final value) to estimate the period.
  const auto wave = tr.voltage_waveform("b");
  std::vector<double> crossings;
  for (std::size_t i = 1; i < wave.size(); ++i) {
    if ((wave[i - 1] - 1.0) < 0.0 && (wave[i] - 1.0) >= 0.0) {
      crossings.push_back(tr.times()[i]);
    }
  }
  ASSERT_GE(crossings.size(), 3u);
  const double period = crossings[2] - crossings[1];
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-6));
  EXPECT_NEAR(1.0 / period, f0, 0.02 * f0);
}

TEST(Transient, TrapezoidalConservesLcEnergyApproximately) {
  // Trapezoidal integration is A-stable and (nearly) energy preserving on
  // LC - the ring amplitude must not decay by more than a few percent.
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::pwl({{0.0, 1.0}, {1e-5, 1.0}, {1.1e-5, 0.0}}));
  c.add_resistor("R1", "in", "a", 1e-2);
  c.add_inductor("L1", "a", "b", 1e-4);
  c.add_capacitor("C1", "b", "0", 1e-8);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 5e-8;
  const TransientResult tr = transient_solve(c, opt);
  const auto wave = tr.voltage_waveform("b");
  double early_peak = 0.0, late_peak = 0.0;
  for (std::size_t i = wave.size() / 5; i < 2 * wave.size() / 5; ++i) {
    early_peak = std::max(early_peak, std::fabs(wave[i]));
  }
  for (std::size_t i = 4 * wave.size() / 5; i < wave.size(); ++i) {
    late_peak = std::max(late_peak, std::fabs(wave[i]));
  }
  EXPECT_GT(early_peak, 0.1);  // it actually rings
  EXPECT_GT(late_peak, 0.8 * early_peak);
}

TEST(Transient, DiodeHalfWaveRectifier) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::sine(0.0, 5.0, 1e3));
  c.add_resistor("R1", "in", "a", 10.0);
  c.add_diode("D1", "a", "out");
  c.add_resistor("RL", "out", "0", 1000.0);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 1e-6;
  const TransientResult tr = transient_solve(c, opt);
  double vmax = -100.0, vmin = 100.0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    vmax = std::max(vmax, tr.voltage("out", i));
    vmin = std::min(vmin, tr.voltage("out", i));
  }
  EXPECT_GT(vmax, 3.5);          // conducts on positive half (minus drop)
  EXPECT_LT(vmax, 5.0);          // diode drop present
  EXPECT_GT(vmin, -0.5);         // blocks the negative half
}

TEST(Transient, SwitchedBuckConverterRegulates) {
  // A complete switching buck: 12 V in, PWM switch, freewheeling diode,
  // LC output filter. Average output ~ duty * Vin.
  constexpr double fsw = 100e3;
  constexpr double duty = 0.5;
  Circuit c;
  c.add_vsource("VIN", "vin", "0", Waveform::dc(12.0));
  const double period = 1.0 / fsw;
  c.add_switch("S1", "vin", "sw",
               Waveform::trapezoid(0.0, 1.0, period, 50e-9, duty * period, 50e-9),
               10e-3, 1e7);
  c.add_diode("D1", "0", "sw", 1e-9, 2.0);
  c.add_inductor("LB", "sw", "out", 47e-6);
  c.add_capacitor("CO", "out", "0", 47e-6);
  c.add_resistor("RL", "out", "0", 6.0);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 2e-8;
  const TransientResult tr = transient_solve(c, opt);
  // Average over the last 20 % (settled).
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 4 * tr.size() / 5; i < tr.size(); ++i) {
    sum += tr.voltage("out", i);
    ++count;
  }
  const double v_avg = sum / static_cast<double>(count);
  EXPECT_NEAR(v_avg, duty * 12.0, 1.2);  // within diode/switch losses
  // Inductor current is positive on average (continuous conduction).
  EXPECT_GT(tr.inductor_current("LB", tr.size() - 1), 0.0);
}

TEST(Transient, CoupledInductorsTransferEnergy) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::sine(0.0, 1.0, 10e3));
  c.add_resistor("Rs", "in", "p", 10.0);
  c.add_inductor("L1", "p", "0", 1e-3);
  c.add_inductor("L2", "s", "0", 1e-3);
  c.add_resistor("RL", "s", "0", 1000.0);
  c.add_coupling("K", "L1", "L2", 0.8);
  TransientOptions opt;
  opt.t_stop = 5e-4;
  opt.dt = 1e-7;
  const TransientResult tr = transient_solve(c, opt);
  double vmax = 0.0;
  for (std::size_t i = tr.size() / 2; i < tr.size(); ++i) {
    vmax = std::max(vmax, std::fabs(tr.voltage("s", i)));
  }
  EXPECT_GT(vmax, 0.1);  // secondary sees induced voltage
}

TEST(Transient, Validation) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(1.0));
  c.add_resistor("R1", "in", "0", 1.0);
  TransientOptions opt;
  opt.dt = 0.0;
  EXPECT_THROW(transient_solve(c, opt), std::invalid_argument);
  opt.dt = 1.0;
  opt.t_stop = 0.5;
  EXPECT_THROW(transient_solve(c, opt), std::invalid_argument);
}

TEST(Transient, ResultAccessors) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(2.0));
  c.add_resistor("R1", "in", "out", 1.0);
  c.add_resistor("R2", "out", "0", 1.0);
  TransientOptions opt;
  opt.t_stop = 1e-5;
  opt.dt = 1e-6;
  const TransientResult tr = transient_solve(c, opt);
  EXPECT_EQ(tr.times().size(), tr.size());
  EXPECT_NEAR(tr.voltage("out", tr.size() - 1), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(tr.voltage("0", 3), 0.0);
  EXPECT_THROW(tr.voltage("zz", 0), std::invalid_argument);
  const auto wave = tr.voltage_waveform("out");
  EXPECT_EQ(wave.size(), tr.size());
}

}  // namespace
}  // namespace emi::ckt
