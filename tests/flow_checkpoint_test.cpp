// Crash-safe checkpoint/resume: a flow killed after any stage resumes to a
// bit-identical result; corrupt, truncated, torn, or mismatched checkpoints
// are rejected with a structured diagnostic - never a crash, never a
// half-loaded resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/checkpoint.hpp"
#include "src/flow/design_flow.hpp"
#include "src/io/design_format.hpp"

namespace emi::flow {
namespace {

struct Guards {
  ~Guards() { core::FaultInjector::instance().disarm(); }
};

FlowOptions quick_options() {
  FlowOptions opt;
  opt.sweep.n_points = 30;
  return opt;
}

std::string temp_ckpt(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// Everything result-bearing in a FlowResult, flattened for equality checks.
std::string fingerprint(const BuckConverter& bc, const FlowResult& r) {
  std::ostringstream o;
  o.precision(17);
  o << "complete=" << r.complete << " peak=" << r.peak_improvement_db << "\n";
  for (double v : r.initial_prediction.level_dbuv) o << v << ",";
  o << "\n";
  for (double v : r.improved_prediction.level_dbuv) o << v << ",";
  o << "\n";
  for (const auto& p : r.simulated_pairs) o << p.first << "+" << p.second << " ";
  o << "\n";
  for (const auto& rule : r.rules) {
    o << rule.comp_a << "|" << rule.comp_b << "|" << rule.pemd.raw() << "\n";
  }
  if (!r.improved_layout.placements.empty()) {
    io::save_layout(o, bc.board, r.improved_layout);
  }
  for (const StageDiagnostic& d : r.diagnostics) {
    o << d.stage << "|" << d.status.to_string() << "|" << d.attempts << "|"
      << d.recovered << "\n";
  }
  return o.str();
}

// The acceptance scenario: kill the flow after each of the five stages in
// turn (stop_after_stage leaves the exact file state of a SIGKILL after the
// checkpoint write), resume, and require the resumed result bit-identical to
// an uninterrupted run.
TEST(FlowCheckpoint, ResumeAfterAnyStageIsBitIdentical) {
  BuckConverter ref_bc = make_buck_converter();
  const FlowResult reference =
      run_design_flow(ref_bc, layout_unfavorable(ref_bc), quick_options());
  ASSERT_TRUE(reference.complete);
  const std::string want = fingerprint(ref_bc, reference);

  for (std::size_t s = 0; s < kFlowStageCount; ++s) {
    const char* stage = flow_stage_name(static_cast<FlowStage>(s));
    const std::string ckpt = temp_ckpt("resume_stage.ckpt");
    std::remove(ckpt.c_str());

    FlowOptions opt = quick_options();
    opt.checkpoint_path = ckpt;
    opt.stop_after_stage = stage;
    BuckConverter bc1 = make_buck_converter();
    run_design_flow(bc1, layout_unfavorable(bc1), opt);

    FlowOptions resume_opt = quick_options();
    resume_opt.checkpoint_path = ckpt;
    BuckConverter bc2 = make_buck_converter();
    const FlowResult resumed =
        resume_design_flow(bc2, layout_unfavorable(bc2), resume_opt);
    EXPECT_TRUE(resumed.complete) << "resume after " << stage;
    EXPECT_EQ(want, fingerprint(bc2, resumed)) << "resume after " << stage;
    std::remove(ckpt.c_str());
  }
}

TEST(FlowCheckpoint, SerializeParseRoundTripPreservesEveryBit) {
  const std::string ckpt = temp_ckpt("roundtrip.ckpt");
  std::remove(ckpt.c_str());
  FlowOptions opt = quick_options();
  opt.checkpoint_path = ckpt;
  BuckConverter bc = make_buck_converter();
  const FlowResult res = run_design_flow(bc, layout_unfavorable(bc), opt);
  ASSERT_TRUE(res.complete);

  const core::Result<FlowCheckpoint> loaded = load_checkpoint_file(ckpt);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const FlowCheckpoint& ck = loaded.value();
  EXPECT_EQ(ck.stages_done, (1u << kFlowStageCount) - 1u);  // all stages final
  EXPECT_EQ(ck.stages_ok, (1u << kFlowStageCount) - 1u);
  EXPECT_EQ(ck.result.initial_prediction.level_dbuv,
            res.initial_prediction.level_dbuv);  // exact bits, no decimal loss
  EXPECT_EQ(ck.result.improved_prediction.level_dbuv,
            res.improved_prediction.level_dbuv);

  const std::string text = serialize_checkpoint(ck);
  const core::Result<FlowCheckpoint> reparsed = parse_checkpoint(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(serialize_checkpoint(reparsed.value()), text);
  std::remove(ckpt.c_str());
}

TEST(FlowCheckpoint, MissingFileIsARejectedResume) {
  const std::string missing = temp_ckpt("never_written.ckpt");
  std::remove(missing.c_str());
  EXPECT_EQ(load_checkpoint_file(missing).status().code(), core::ErrorCode::kIoError);

  FlowOptions opt = quick_options();
  opt.checkpoint_path = missing;
  BuckConverter bc = make_buck_converter();
  const FlowResult res = resume_design_flow(bc, layout_unfavorable(bc), opt);
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics[0].stage, "flow.checkpoint");
  EXPECT_EQ(res.diagnostics[0].status.code(), core::ErrorCode::kIoError);
  EXPECT_TRUE(res.initial_prediction.level_dbuv.empty());  // nothing ran
}

TEST(FlowCheckpoint, EmptyPathIsACallerMistake) {
  FlowOptions opt = quick_options();
  BuckConverter bc = make_buck_converter();
  const FlowResult res = resume_design_flow(bc, layout_unfavorable(bc), opt);
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics[0].status.code(), core::ErrorCode::kInvalidArgument);
}

// Resuming against a different flow configuration must be refused - the
// header digest ties a checkpoint to its inputs.
TEST(FlowCheckpoint, ConfigurationMismatchIsRejected) {
  const std::string ckpt = temp_ckpt("digest.ckpt");
  std::remove(ckpt.c_str());
  FlowOptions opt = quick_options();
  opt.checkpoint_path = ckpt;
  opt.stop_after_stage = "sensitivity";
  BuckConverter bc1 = make_buck_converter();
  run_design_flow(bc1, layout_unfavorable(bc1), opt);

  FlowOptions other = quick_options();
  other.sweep.n_points = 40;  // different sweep grid => different digest
  other.checkpoint_path = ckpt;
  BuckConverter bc2 = make_buck_converter();
  const FlowResult res = resume_design_flow(bc2, layout_unfavorable(bc2), other);
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics[0].status.code(), core::ErrorCode::kFailedPrecondition);
  std::remove(ckpt.c_str());
}

// The ckpt fault site tears the payload mid-write (as a crash under a
// non-atomic writer would). The write itself reports success - exactly like
// a process that died before noticing - and the checksum rejects the torn
// file on load.
TEST(FlowCheckpoint, TornWriteIsCaughtByTheChecksumOnLoad) {
  Guards guards;
  const std::string good = temp_ckpt("torn_good.ckpt");
  std::remove(good.c_str());
  FlowOptions opt = quick_options();
  opt.checkpoint_path = good;
  opt.stop_after_stage = "initial_prediction";
  BuckConverter bc = make_buck_converter();
  run_design_flow(bc, layout_unfavorable(bc), opt);
  const core::Result<FlowCheckpoint> clean = load_checkpoint_file(good);
  ASSERT_TRUE(clean.ok());

  const std::string torn = temp_ckpt("torn_bad.ckpt");
  core::FaultInjector::instance().configure(core::FaultSite::kCkpt, 1.0, 11);
  EXPECT_TRUE(save_checkpoint_file(torn, clean.value()).ok());
  core::FaultInjector::instance().disarm();

  const core::Result<FlowCheckpoint> loaded = load_checkpoint_file(torn);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::ErrorCode::kParseError);
  std::remove(good.c_str());
  std::remove(torn.c_str());
}

TEST(FlowCheckpoint, ParseErrorsCarryLineNumbers) {
  EXPECT_EQ(parse_checkpoint("").status().code(), core::ErrorCode::kParseError);
  // No checksum line at all: reported as truncation, with the line count.
  const core::Status no_checksum = parse_checkpoint("NOTACKPT 1 0\n").status();
  EXPECT_EQ(no_checksum.code(), core::ErrorCode::kParseError);
  EXPECT_NE(no_checksum.to_string().find("line "), std::string::npos);
  EXPECT_NE(no_checksum.to_string().find("checksum"), std::string::npos);

  // A correctly checksummed file with a bad magic: rejected at line 1.
  std::string payload = "NOTACKPT 1 0000000000000000\n";
  char sum[32];
  std::snprintf(sum, sizeof sum, "checksum %016llx\n",
                static_cast<unsigned long long>(core::fault::fnv64(payload)));
  const core::Status bad_magic = parse_checkpoint(payload + sum).status();
  EXPECT_EQ(bad_magic.code(), core::ErrorCode::kParseError);
  EXPECT_NE(bad_magic.to_string().find("line 1"), std::string::npos);

  // A real checkpoint with one flipped byte in the middle: checksum mismatch.
  FlowCheckpoint ck;
  ck.set(FlowStage::kSensitivity, true);
  std::string text = serialize_checkpoint(ck);
  ASSERT_TRUE(parse_checkpoint(text).ok());
  std::string flipped = text;
  flipped[flipped.size() / 2] ^= 0x01;
  const core::Status st = parse_checkpoint(flipped).status();
  EXPECT_EQ(st.code(), core::ErrorCode::kParseError);
}

TEST(FlowCheckpoint, InconsistentStageBitmasksAreRejected) {
  FlowCheckpoint ck;
  ck.stages_ok = 0x2;  // ok bit for a stage that is not done
  const std::string text = serialize_checkpoint(ck);
  EXPECT_EQ(parse_checkpoint(text).status().code(), core::ErrorCode::kParseError);
}

// Corruption fuzz: truncations and bit flips at driver-chosen offsets over a
// real mid-flow checkpoint. Every mutation must either parse clean (the rare
// no-op flip) or come back as a structured error - never crash, never load a
// half-valid checkpoint silently.
TEST(FlowCheckpoint, FuzzedCorruptionNeverCrashesTheParser) {
  const std::string ckpt = temp_ckpt("fuzz.ckpt");
  std::remove(ckpt.c_str());
  FlowOptions opt = quick_options();
  opt.checkpoint_path = ckpt;
  opt.stop_after_stage = "placement";
  BuckConverter bc = make_buck_converter();
  run_design_flow(bc, layout_unfavorable(bc), opt);
  const core::Result<FlowCheckpoint> clean = load_checkpoint_file(ckpt);
  ASSERT_TRUE(clean.ok());
  const std::string text = serialize_checkpoint(clean.value());
  ASSERT_GT(text.size(), 100u);

  std::size_t rejected = 0;
  for (std::uint32_t seed = 0; seed < 600; ++seed) {
    std::mt19937 rng(seed);
    std::string mutated = text;
    if (seed % 2 == 0) {
      mutated.resize(rng() % mutated.size());  // truncation (possibly empty)
    } else {
      const std::size_t pos = rng() % mutated.size();
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << (rng() % 8)));
    }
    const core::Result<FlowCheckpoint> r = parse_checkpoint(mutated);
    if (!r.ok()) {
      ++rejected;
      EXPECT_EQ(r.status().code(), core::ErrorCode::kParseError) << "seed " << seed;
    }
  }
  // The checksum catches essentially everything; a handful of flips may
  // land in a diag message and survive (the checksum still re-validates, so
  // only same-checksum mutations could pass - none in practice).
  EXPECT_GT(rejected, 590u);

  // A sample of the corrupt files must also be safe end to end: resume
  // rejects them with a diagnostic, and nothing runs.
  const std::string bad = temp_ckpt("fuzz_bad.ckpt");
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(seed * 97 + 1);
    std::string mutated = text;
    mutated.resize(rng() % mutated.size());
    {
      std::FILE* f = std::fopen(bad.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!mutated.empty()) std::fwrite(mutated.data(), 1, mutated.size(), f);
      std::fclose(f);
    }
    FlowOptions ropt = quick_options();
    ropt.checkpoint_path = bad;
    BuckConverter rbc = make_buck_converter();
    const FlowResult res = resume_design_flow(rbc, layout_unfavorable(rbc), ropt);
    EXPECT_FALSE(res.complete) << "seed " << seed;
    ASSERT_EQ(res.diagnostics.size(), 1u) << "seed " << seed;
    EXPECT_EQ(res.diagnostics[0].stage, "flow.checkpoint");
  }
  std::remove(bad.c_str());
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace emi::flow
