// The extraction caches of CouplingExtractor: content-digest model identity,
// canonical-relative-pose mutual memoization, hit/miss accounting, and
// correctness of cached results against the raw PEEC kernels.
#include "src/peec/coupling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/peec/component_model.hpp"
#include "src/peec/partial_inductance.hpp"

namespace emi::peec {
namespace {

class MutualCacheTest : public ::testing::Test {
 protected:
  ComponentFieldModel ca_ = x_capacitor("CA");
  ComponentFieldModel cb_ = x_capacitor("CB");
  CouplingExtractor ex_;
};

TEST_F(MutualCacheTest, ModelDigestTracksContentNotAddress) {
  // Copies share a digest; mutating any cached-relevant field changes it.
  ComponentFieldModel copy = ca_;
  EXPECT_EQ(model_digest(ca_), model_digest(copy));
  copy.mu_eff = 10.0;
  EXPECT_NE(model_digest(ca_), model_digest(copy));
  ComponentFieldModel scaled = ca_;
  scaled.stray_scale = 0.5;
  EXPECT_NE(model_digest(ca_), model_digest(scaled));
  // Name is presentation, not field content: CA and CB share geometry.
  EXPECT_EQ(model_digest(ca_), model_digest(cb_));
}

TEST_F(MutualCacheTest, TranslatedPairHitsSameEntry) {
  const PlacedModel a0{&ca_, {{0.0, 0.0, 0.0}, 30.0}};
  const PlacedModel b0{&cb_, {{25.0, 4.0, 0.0}, 75.0}};
  const double m0 = ex_.mutual(a0, b0).raw();
  const ExtractionCacheStats after_first = ex_.cache_stats();
  EXPECT_EQ(after_first.mutual_misses, 1u);
  EXPECT_EQ(after_first.mutual_hits, 0u);

  // Rigid translation of the whole pair: same relative pose, cache hit,
  // bit-identical mutual.
  const PlacedModel a1{&ca_, {{-7.5, 113.25, 0.0}, 30.0}};
  const PlacedModel b1{&cb_, {{17.5, 117.25, 0.0}, 75.0}};
  const double m1 = ex_.mutual(a1, b1).raw();
  EXPECT_EQ(m0, m1);
  const ExtractionCacheStats after_second = ex_.cache_stats();
  EXPECT_EQ(after_second.mutual_misses, 1u);
  EXPECT_EQ(after_second.mutual_hits, 1u);
}

TEST_F(MutualCacheTest, SwappedArgumentsHitAndMatchExactly) {
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{22.0, 5.0, 0.0}, 30.0}};
  const double mab = ex_.mutual(a, b).raw();
  const double mba = ex_.mutual(b, a).raw();
  // Canonical pair ordering makes reciprocity exact, not just numerical.
  EXPECT_EQ(mab, mba);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 1u);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 1u);
}

TEST_F(MutualCacheTest, DifferentRelativePoseMisses) {
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel near{&cb_, {{20.0, 0.0, 0.0}, 0.0}};
  const PlacedModel far{&cb_, {{40.0, 0.0, 0.0}, 0.0}};
  const double m_near = ex_.mutual(a, near).raw();
  const double m_far = ex_.mutual(a, far).raw();
  EXPECT_NE(m_near, m_far);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 2u);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 0u);
}

TEST_F(MutualCacheTest, QuadratureOptionsSeparateCachedValues) {
  QuadratureOptions coarse;
  coarse.order = 2;
  coarse.subdivisions = 1;
  const CouplingExtractor ex_coarse(coarse);
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{18.0, 3.0, 0.0}, 20.0}};
  const double m_fine = ex_.mutual(a, b).raw();
  const double m_coarse = ex_coarse.mutual(a, b).raw();
  // Different quadrature, different result - no cross-contamination, and
  // each extractor logged its own miss.
  EXPECT_NE(m_fine, m_coarse);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 1u);
  EXPECT_EQ(ex_coarse.cache_stats().mutual_misses, 1u);
}

TEST_F(MutualCacheTest, CachedMutualMatchesRawKernel) {
  const Pose pa{{3.0, -2.0, 0.0}, 40.0};
  const Pose pb{{29.0, 6.0, 0.0}, 130.0};
  const PlacedModel a{&ca_, pa};
  const PlacedModel b{&cb_, pb};
  const double cached = ex_.mutual(a, b).raw();
  const double raw =
      path_mutual(ca_.path_at(pa), cb_.path_at(pb), ex_.options());
  // The cached value is computed in the canonical relative frame; it must
  // agree with the world-frame kernel to rigid-motion-invariance accuracy.
  EXPECT_NEAR(cached, raw, std::fabs(raw) * 1e-9 + 1e-18);
  // And repeat calls return the first bits.
  EXPECT_EQ(ex_.mutual(a, b).raw(), cached);
}

TEST_F(MutualCacheTest, StrayScaleAppliedOutsideTheCache) {
  ComponentFieldModel scaled = cb_;
  scaled.stray_scale = 0.25;
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{24.0, 0.0, 0.0}, 0.0}};
  const PlacedModel bs{&scaled, {{24.0, 0.0, 0.0}, 0.0}};
  const double m = ex_.mutual(a, b).raw();
  const double ms = ex_.mutual(a, bs).raw();
  EXPECT_NEAR(ms, 0.25 * m, std::fabs(m) * 1e-12);
}

TEST_F(MutualCacheTest, SelfCacheCountsHitsAndSurvivesReallocation) {
  auto m1 = std::make_unique<ComponentFieldModel>(x_capacitor("M1"));
  const double l1 = ex_.self_inductance(*m1).raw();
  EXPECT_EQ(ex_.cache_stats().self_misses, 1u);
  EXPECT_EQ(ex_.self_inductance(*m1).raw(), l1);
  EXPECT_EQ(ex_.cache_stats().self_hits, 1u);

  // Destroy the model and allocate a different one. With address-based keys
  // the new model could alias the stale entry; content digests cannot.
  m1.reset();
  XCapacitorParams big;
  big.pin_pitch = Millimeters{37.5};
  auto m2 = std::make_unique<ComponentFieldModel>(x_capacitor("M2", big));
  const double l2 = ex_.self_inductance(*m2).raw();
  EXPECT_NE(l2, l1);
  EXPECT_NEAR(l2, CouplingExtractor(ex_.options()).self_inductance(*m2).raw(),
              std::fabs(l2) * 1e-12);
}

TEST_F(MutualCacheTest, EvictionKeepsNewestHalfAndMonotoneCounters) {
  // Cheapest possible extraction: single-segment trace models at order 1 /
  // no subdivision, so filling past the cap stays fast.
  QuadratureOptions tiny;
  tiny.order = 1;
  tiny.subdivisions = 1;
  const CouplingExtractor ex(tiny);
  const ComponentFieldModel ta = trace_model("TA", {0, 0, 0}, {10, 0, 0});
  const ComponentFieldModel tb = trace_model("TB", {0, 0, 0}, {8, 0, 0});
  const PlacedModel a{&ta, {{0.0, 0.0, 0.0}, 0.0}};

  const auto b_at = [&](std::size_t i) {
    // Distinct relative pose per index -> distinct cache key.
    return PlacedModel{&tb, {{20.0 + 0.125 * static_cast<double>(i), 0.0, 0.0}, 0.0}};
  };

  const std::size_t n = CouplingExtractor::kMutualCacheCap + 16;
  const double first = ex.mutual(a, b_at(0)).raw();
  for (std::size_t i = 1; i < n; ++i) (void)ex.mutual(a, b_at(i));
  const ExtractionCacheStats filled = ex.cache_stats();
  EXPECT_EQ(filled.mutual_misses, n);
  EXPECT_EQ(filled.mutual_hits, 0u);

  // The cap was crossed, so the oldest-inserted half is gone: the first key
  // misses again (and recomputes the same bits), while the newest key is
  // still resident and hits.
  EXPECT_EQ(ex.mutual(a, b_at(n - 1)).raw(), ex.mutual(a, b_at(n - 1)).raw());
  const ExtractionCacheStats newest = ex.cache_stats();
  EXPECT_EQ(newest.mutual_hits, 2u);
  EXPECT_EQ(newest.mutual_misses, n);

  EXPECT_EQ(ex.mutual(a, b_at(0)).raw(), first);
  const ExtractionCacheStats refetched = ex.cache_stats();
  EXPECT_EQ(refetched.mutual_misses, n + 1);
  // Counters are cumulative traffic, never reset by eviction.
  EXPECT_GE(refetched.mutual_misses, filled.mutual_misses);
  EXPECT_GE(refetched.mutual_hits, filled.mutual_hits);
}

TEST_F(MutualCacheTest, BatchMatchesPerCallBitwise) {
  const ComponentFieldModel coil = bobbin_coil("L1");
  std::vector<PlacedModel> models = {
      {&ca_, {{0.0, 0.0, 0.0}, 0.0}},
      {&cb_, {{22.0, 5.0, 0.0}, 30.0}},
      {&coil, {{40.0, -6.0, 0.0}, 90.0}},
  };
  std::vector<std::pair<std::size_t, std::size_t>> pairs = {
      {0, 1}, {0, 2}, {1, 2}, {1, 0},  // swapped duplicate of {0,1}
      {0, 1},                          // literal duplicate
  };
  const std::vector<Henry> batch = ex_.mutual_batch(models, pairs);
  ASSERT_EQ(batch.size(), pairs.size());

  const CouplingExtractor fresh(ex_.options());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(batch[p].raw(),
              fresh.mutual(models[pairs[p].first], models[pairs[p].second]).raw())
        << "pair " << p;
  }
  // 3 unique canonical poses; the swapped and literal duplicates are hits.
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 3u);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 2u);

  // Re-running the batch is all hits and returns the same bits.
  const std::vector<Henry> again = ex_.mutual_batch(models, pairs);
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(batch[p].raw(), again[p].raw());
  }
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 3u);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 7u);
}

TEST_F(MutualCacheTest, BatchValidatesInputs) {
  std::vector<PlacedModel> models = {{&ca_, {{0.0, 0.0, 0.0}, 0.0}}};
  const std::vector<std::pair<std::size_t, std::size_t>> oob = {{0, 1}};
  EXPECT_THROW((void)ex_.mutual_batch(models, oob), std::invalid_argument);
  models.push_back({nullptr, {{10.0, 0.0, 0.0}, 0.0}});
  const std::vector<std::pair<std::size_t, std::size_t>> null_pair = {{0, 1}};
  EXPECT_THROW((void)ex_.mutual_batch(models, null_pair), std::invalid_argument);
}

TEST_F(MutualCacheTest, MutualMatrixSymmetricWithSelfDiagonal) {
  const ComponentFieldModel coil = bobbin_coil("L1");
  const std::vector<PlacedModel> models = {
      {&ca_, {{0.0, 0.0, 0.0}, 0.0}},
      {&cb_, {{24.0, 3.0, 0.0}, 45.0}},
      {&coil, {{50.0, 10.0, 0.0}, 90.0}},
  };
  const std::size_t n = models.size();
  const std::vector<Henry> m = ex_.mutual_matrix(models);
  ASSERT_EQ(m.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(m[i * n + i].raw(), ex_.self_inductance(*models[i].model).raw());
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(m[i * n + j].raw(), m[j * n + i].raw());
      EXPECT_EQ(m[i * n + j].raw(), ex_.mutual(models[i], models[j]).raw());
    }
  }
}

TEST_F(MutualCacheTest, KernelOptionsSeparateCachedValues) {
  KernelOptions fast;
  fast.analytic_parallel = true;
  fast.far_field = true;
  fast.far_field_ratio = 4.0;
  const CouplingExtractor ex_fast(QuadratureOptions{}, fast);
  // Far pair: the fast extractor reroutes it, the exact one does not; the
  // kernel gates are part of the key, so the two extractors never share
  // entries even for the same geometry.
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{180.0, 0.0, 0.0}, 0.0}};
  const double exact = ex_.mutual(a, b).raw();
  const double approx = ex_fast.mutual(a, b).raw();
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 1u);
  EXPECT_EQ(ex_fast.cache_stats().mutual_misses, 1u);
  // Approximation is close (far-field bound) but not the same bits.
  EXPECT_NEAR(approx, exact, std::fabs(exact) * 0.1 + 1e-18);
}

}  // namespace
}  // namespace emi::peec
