// The extraction caches of CouplingExtractor: content-digest model identity,
// canonical-relative-pose mutual memoization, hit/miss accounting, and
// correctness of cached results against the raw PEEC kernels.
#include "src/peec/coupling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/peec/component_model.hpp"
#include "src/peec/partial_inductance.hpp"

namespace emi::peec {
namespace {

class MutualCacheTest : public ::testing::Test {
 protected:
  ComponentFieldModel ca_ = x_capacitor("CA");
  ComponentFieldModel cb_ = x_capacitor("CB");
  CouplingExtractor ex_;
};

TEST_F(MutualCacheTest, ModelDigestTracksContentNotAddress) {
  // Copies share a digest; mutating any cached-relevant field changes it.
  ComponentFieldModel copy = ca_;
  EXPECT_EQ(model_digest(ca_), model_digest(copy));
  copy.mu_eff = 10.0;
  EXPECT_NE(model_digest(ca_), model_digest(copy));
  ComponentFieldModel scaled = ca_;
  scaled.stray_scale = 0.5;
  EXPECT_NE(model_digest(ca_), model_digest(scaled));
  // Name is presentation, not field content: CA and CB share geometry.
  EXPECT_EQ(model_digest(ca_), model_digest(cb_));
}

TEST_F(MutualCacheTest, TranslatedPairHitsSameEntry) {
  const PlacedModel a0{&ca_, {{0.0, 0.0, 0.0}, 30.0}};
  const PlacedModel b0{&cb_, {{25.0, 4.0, 0.0}, 75.0}};
  const double m0 = ex_.mutual(a0, b0).raw();
  const ExtractionCacheStats after_first = ex_.cache_stats();
  EXPECT_EQ(after_first.mutual_misses, 1u);
  EXPECT_EQ(after_first.mutual_hits, 0u);

  // Rigid translation of the whole pair: same relative pose, cache hit,
  // bit-identical mutual.
  const PlacedModel a1{&ca_, {{-7.5, 113.25, 0.0}, 30.0}};
  const PlacedModel b1{&cb_, {{17.5, 117.25, 0.0}, 75.0}};
  const double m1 = ex_.mutual(a1, b1).raw();
  EXPECT_EQ(m0, m1);
  const ExtractionCacheStats after_second = ex_.cache_stats();
  EXPECT_EQ(after_second.mutual_misses, 1u);
  EXPECT_EQ(after_second.mutual_hits, 1u);
}

TEST_F(MutualCacheTest, SwappedArgumentsHitAndMatchExactly) {
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{22.0, 5.0, 0.0}, 30.0}};
  const double mab = ex_.mutual(a, b).raw();
  const double mba = ex_.mutual(b, a).raw();
  // Canonical pair ordering makes reciprocity exact, not just numerical.
  EXPECT_EQ(mab, mba);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 1u);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 1u);
}

TEST_F(MutualCacheTest, DifferentRelativePoseMisses) {
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel near{&cb_, {{20.0, 0.0, 0.0}, 0.0}};
  const PlacedModel far{&cb_, {{40.0, 0.0, 0.0}, 0.0}};
  const double m_near = ex_.mutual(a, near).raw();
  const double m_far = ex_.mutual(a, far).raw();
  EXPECT_NE(m_near, m_far);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 2u);
  EXPECT_EQ(ex_.cache_stats().mutual_hits, 0u);
}

TEST_F(MutualCacheTest, QuadratureOptionsSeparateCachedValues) {
  QuadratureOptions coarse;
  coarse.order = 2;
  coarse.subdivisions = 1;
  const CouplingExtractor ex_coarse(coarse);
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{18.0, 3.0, 0.0}, 20.0}};
  const double m_fine = ex_.mutual(a, b).raw();
  const double m_coarse = ex_coarse.mutual(a, b).raw();
  // Different quadrature, different result - no cross-contamination, and
  // each extractor logged its own miss.
  EXPECT_NE(m_fine, m_coarse);
  EXPECT_EQ(ex_.cache_stats().mutual_misses, 1u);
  EXPECT_EQ(ex_coarse.cache_stats().mutual_misses, 1u);
}

TEST_F(MutualCacheTest, CachedMutualMatchesRawKernel) {
  const Pose pa{{3.0, -2.0, 0.0}, 40.0};
  const Pose pb{{29.0, 6.0, 0.0}, 130.0};
  const PlacedModel a{&ca_, pa};
  const PlacedModel b{&cb_, pb};
  const double cached = ex_.mutual(a, b).raw();
  const double raw =
      path_mutual(ca_.path_at(pa), cb_.path_at(pb), ex_.options());
  // The cached value is computed in the canonical relative frame; it must
  // agree with the world-frame kernel to rigid-motion-invariance accuracy.
  EXPECT_NEAR(cached, raw, std::fabs(raw) * 1e-9 + 1e-18);
  // And repeat calls return the first bits.
  EXPECT_EQ(ex_.mutual(a, b).raw(), cached);
}

TEST_F(MutualCacheTest, StrayScaleAppliedOutsideTheCache) {
  ComponentFieldModel scaled = cb_;
  scaled.stray_scale = 0.25;
  const PlacedModel a{&ca_, {{0.0, 0.0, 0.0}, 0.0}};
  const PlacedModel b{&cb_, {{24.0, 0.0, 0.0}, 0.0}};
  const PlacedModel bs{&scaled, {{24.0, 0.0, 0.0}, 0.0}};
  const double m = ex_.mutual(a, b).raw();
  const double ms = ex_.mutual(a, bs).raw();
  EXPECT_NEAR(ms, 0.25 * m, std::fabs(m) * 1e-12);
}

TEST_F(MutualCacheTest, SelfCacheCountsHitsAndSurvivesReallocation) {
  auto m1 = std::make_unique<ComponentFieldModel>(x_capacitor("M1"));
  const double l1 = ex_.self_inductance(*m1).raw();
  EXPECT_EQ(ex_.cache_stats().self_misses, 1u);
  EXPECT_EQ(ex_.self_inductance(*m1).raw(), l1);
  EXPECT_EQ(ex_.cache_stats().self_hits, 1u);

  // Destroy the model and allocate a different one. With address-based keys
  // the new model could alias the stale entry; content digests cannot.
  m1.reset();
  XCapacitorParams big;
  big.pin_pitch = Millimeters{37.5};
  auto m2 = std::make_unique<ComponentFieldModel>(x_capacitor("M2", big));
  const double l2 = ex_.self_inductance(*m2).raw();
  EXPECT_NE(l2, l1);
  EXPECT_NEAR(l2, CouplingExtractor(ex_.options()).self_inductance(*m2).raw(),
              std::fabs(l2) * 1e-12);
}

}  // namespace
}  // namespace emi::peec
