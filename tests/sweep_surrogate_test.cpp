// Reduced-order rational surrogate: support planning, Floater-Hormann fit /
// order selection, exact support reproduction, the escalation gate, and the
// end-to-end surrogate sweep against the dense reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "src/ckt/ac.hpp"
#include "src/ckt/circuit.hpp"
#include "src/numeric/stats.hpp"
#include "src/sweep/adaptive.hpp"
#include "src/sweep/surrogate.hpp"

namespace emi::sweep {
namespace {

// Noise source -> RL divider with a well-damped shunt resonator: a transfer
// function with one gentle notch, comfortably inside the surrogate's reach.
// (High-Q structure belongs to the adaptive engine or the coupling model;
// the standalone surrogate's fixed support would escalate on it, which
// ZeroGateEscalatesToDenseBitwise covers explicitly.)
ckt::Circuit testbed(std::string* meas) {
  ckt::Circuit c;
  c.add_vsource("VN", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RS", "in", "n1", 10.0);
  c.add_inductor("L1", "n1", "n2", 10e-6);
  c.add_capacitor("C1", "n2", "c1", 100e-9);
  c.add_inductor("LC1", "c1", "e1", 20e-9);
  c.add_resistor("RC1", "e1", "0", 2.0);
  c.add_resistor("RLOAD", "n2", "0", 50.0);
  *meas = "n2";
  return c;
}

std::vector<double> dense_reference(const ckt::Circuit& c, const std::string& meas,
                                    const std::vector<double>& freqs,
                                    const std::vector<double>& env) {
  ckt::AcOptions ac;
  ac.source_scale = env;
  const ckt::AcSolution sol = ckt::ac_solve(c, freqs, ac);
  std::vector<double> level(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    level[i] = num::volts_to_dbuv(std::abs(sol.voltage(meas, i)));
  }
  return level;
}

TEST(SupportPlan, DeterministicSortedDisjointCoversEndpoints) {
  const SupportPlan a = plan_support(200, 17, 4);
  const SupportPlan b = plan_support(200, 17, 4);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.holdout, b.holdout);
  ASSERT_FALSE(a.support.empty());
  EXPECT_EQ(a.support.front(), 0u);
  EXPECT_EQ(a.support.back(), 199u);
  EXPECT_TRUE(std::is_sorted(a.support.begin(), a.support.end()));
  EXPECT_TRUE(std::is_sorted(a.holdout.begin(), a.holdout.end()));
  EXPECT_EQ(a.holdout.size(), 4u);
  for (std::size_t h : a.holdout) {
    EXPECT_FALSE(std::binary_search(a.support.begin(), a.support.end(), h));
  }
}

TEST(SupportPlan, DegenerateGridsStayInBounds) {
  EXPECT_TRUE(plan_support(0, 17, 4).support.empty());
  const SupportPlan tiny = plan_support(3, 17, 4);
  for (std::size_t i : tiny.support) EXPECT_LT(i, 3u);
  for (std::size_t i : tiny.holdout) EXPECT_LT(i, 3u);
}

TEST(RationalSurrogate, ReproducesSupportValuesExactly) {
  // H(x) = 1 / (1 + i x) sampled on a handful of nodes.
  std::vector<double> x;
  std::vector<Complex> v;
  for (int i = 0; i <= 8; ++i) {
    const double xv = -2.0 + 0.5 * i;
    x.push_back(xv);
    v.push_back(1.0 / Complex(1.0, xv));
  }
  const RationalSurrogate s = RationalSurrogate::fit(x, v, {}, {}, 8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(s.eval(x[i]), v[i]) << i;  // bitwise: exact-node short circuit
  }
  EXPECT_EQ(s.support_size(), x.size());
  EXPECT_EQ(s.residual_db(), 0.0);  // no holdout -> no claimed residual
}

TEST(RationalSurrogate, HoldoutResidualSmallForSmoothTransfer) {
  std::vector<double> x, xh;
  std::vector<Complex> v, vh;
  const auto h = [](double xv) {
    return 1.0 / (Complex(1.0, xv) * Complex(2.0, 0.3 * xv));
  };
  for (int i = 0; i <= 12; ++i) {
    const double xv = -3.0 + 0.5 * i;
    x.push_back(xv);
    v.push_back(h(xv));
  }
  for (double xv : {-2.7, -0.8, 1.3, 2.6}) {
    xh.push_back(xv);
    vh.push_back(h(xv));
  }
  const RationalSurrogate s = RationalSurrogate::fit(x, v, xh, vh, 8);
  EXPECT_LT(s.residual_db(), 0.1);
  EXPECT_LE(s.order(), 8u);
  // Deterministic order selection: same inputs, same order.
  EXPECT_EQ(RationalSurrogate::fit(x, v, xh, vh, 8).order(), s.order());
}

TEST(RationalSurrogate, RejectsDegenerateInputs) {
  EXPECT_THROW(RationalSurrogate::fit({1.0}, {Complex(1.0, 0.0)}, {}, {}, 4),
               std::invalid_argument);
  EXPECT_THROW(RationalSurrogate::fit({1.0, 1.0},
                                      {Complex(1.0, 0.0), Complex(2.0, 0.0)}, {}, {}, 4),
               std::invalid_argument);
  EXPECT_THROW(RationalSurrogate::fit({1.0, 2.0},
                                      {Complex(1.0, 0.0), Complex(2.0, 0.0)},
                                      {1.5}, {}, 4),
               std::invalid_argument);
}

TEST(SurrogateSweep, SolvedPointsBitwiseEqualRestWithinGate) {
  std::string meas;
  const ckt::Circuit c = testbed(&meas);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 200);
  const std::vector<double> env(freqs.size(), 1.0);
  const std::vector<double> ref = dense_reference(c, meas, freqs, env);

  SweepAccel accel;
  accel.surrogate = true;
  accel.coarse_points = 33;  // standalone support: denser than the default
  SweepStats stats;
  const std::vector<double> level =
      surrogate_emission_sweep(c, meas, freqs, env, {}, accel, &stats);
  ASSERT_EQ(level.size(), freqs.size());
  ASSERT_EQ(stats.escalations, 0u) << "testbed must fit within the gate";

  const SupportPlan plan =
      plan_support(freqs.size(), accel.coarse_points, accel.holdout_points);
  const std::size_t solved = plan.support.size() + plan.holdout.size();
  EXPECT_EQ(stats.full_solves, solved);
  EXPECT_EQ(stats.surrogate_evals, freqs.size() - solved);
  EXPECT_LE(stats.max_residual_db, accel.gate_db);
  for (std::size_t i : plan.support) EXPECT_EQ(level[i], ref[i]) << i;  // bitwise
  for (std::size_t i : plan.holdout) EXPECT_EQ(level[i], ref[i]) << i;
  // The gate bounds the surrogate's SELF-REPORTED residual (the held-out
  // points); between them the true deviation can poke past it a little, so
  // the dense-grid acceptance allows 2x the gate.
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_LE(std::abs(level[i] - ref[i]), 2.0 * accel.gate_db) << i;
  }
  // The per-pair solve count must stay well under the dense grid; the 10x
  // acceptance economics are asserted at flow level where the baseline
  // refinement cost amortizes across every candidate pair.
  EXPECT_GE(freqs.size() / stats.full_solves, 3u);
}

TEST(SurrogateSweep, ZeroGateEscalatesToDenseBitwise) {
  std::string meas;
  const ckt::Circuit c = testbed(&meas);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 120);
  const std::vector<double> env(freqs.size(), 1.0);
  const std::vector<double> ref = dense_reference(c, meas, freqs, env);

  SweepAccel accel;
  accel.surrogate = true;
  accel.gate_db = 0.0;  // any nonzero residual escalates
  SweepStats stats;
  const std::vector<double> level =
      surrogate_emission_sweep(c, meas, freqs, env, {}, accel, &stats);
  EXPECT_EQ(level, ref);  // bitwise: the dense fallback is the dense path
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(stats.surrogate_evals, 0u);
  // Escalation pays support+holdout and then the dense grid.
  const SupportPlan plan = plan_support(freqs.size(), accel.coarse_points,
                                        accel.holdout_points);
  EXPECT_EQ(stats.full_solves, freqs.size() + plan.support.size() + plan.holdout.size());
}

TEST(SurrogateSweep, DisabledOrTinyGridsFallBackToDense) {
  std::string meas;
  const ckt::Circuit c = testbed(&meas);
  const std::vector<double> env3(3, 1.0);
  const std::vector<double> freqs3{1e6, 2e6, 4e6};
  SweepAccel off;  // surrogate = false
  SweepStats stats;
  EXPECT_EQ(surrogate_emission_sweep(c, meas, freqs3, env3, {}, off, &stats),
            dense_reference(c, meas, freqs3, env3));
  EXPECT_EQ(stats.full_solves, 3u);

  SweepAccel on;
  on.surrogate = true;
  SweepStats stats2;  // grid smaller than support+holdout: dense fallback
  EXPECT_EQ(surrogate_emission_sweep(c, meas, freqs3, env3, {}, on, &stats2),
            dense_reference(c, meas, freqs3, env3));
  EXPECT_EQ(stats2.escalations, 0u);
  EXPECT_THROW(surrogate_emission_sweep(c, meas, freqs3, {1.0}, {}, on, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace emi::sweep
