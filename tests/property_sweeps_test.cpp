// Cross-module parameterized property sweeps: analytic transfer functions
// over frequency decades, standard-limit consistency over classes, and
// reciprocity/symmetry of the field solver over random poses.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/ckt/ac.hpp"
#include "src/emi/cispr25.hpp"
#include "src/numeric/rng.hpp"
#include "src/peec/component_model.hpp"
#include "src/peec/coupling.hpp"

namespace emi {
namespace {

// --- RC low-pass |H| matches 1/sqrt(1+(f/fc)^2) across five decades --------
class RcTransfer : public ::testing::TestWithParam<double> {};

TEST_P(RcTransfer, MagnitudeAndPhase) {
  const double f = GetParam();
  ckt::Circuit c;
  c.add_vsource("V1", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1591.5);  // fc = 1/(2 pi R C) = 100 kHz
  c.add_capacitor("C1", "out", "0", 1e-9);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1591.5 * 1e-9);
  const ckt::AcSolution sol = ckt::ac_solve(c, {f});
  const auto v = sol.voltage("out", 0);
  const double expected_mag = 1.0 / std::sqrt(1.0 + (f / fc) * (f / fc));
  EXPECT_NEAR(std::abs(v), expected_mag, 1e-6 + 1e-3 * expected_mag) << f;
  const double expected_phase = -std::atan(f / fc);
  EXPECT_NEAR(std::arg(v), expected_phase, 1e-3) << f;
}

INSTANTIATE_TEST_SUITE_P(Decades, RcTransfer,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6, 1e7, 1e8));

// --- series RLC |I| follows the analytic impedance across the resonance ----
class RlcCurrent : public ::testing::TestWithParam<double> {};

TEST_P(RlcCurrent, MatchesImpedance) {
  const double f = GetParam();
  constexpr double R = 25.0, L = 10e-6, C = 10e-9;
  ckt::Circuit c;
  c.add_vsource("V1", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "a", R);
  c.add_inductor("L1", "a", "b", L);
  c.add_capacitor("C1", "b", "0", C);
  const ckt::AcSolution sol = ckt::ac_solve(c, {f});
  const double w = 2.0 * std::numbers::pi * f;
  const double x = w * L - 1.0 / (w * C);
  const double z = std::sqrt(R * R + x * x);
  EXPECT_NEAR(std::abs(sol.inductor_current("L1", 0)), 1.0 / z, 2e-3 / z) << f;
}

INSTANTIATE_TEST_SUITE_P(AroundResonance, RlcCurrent,
                         ::testing::Values(1e5, 3e5, 5.03e5, 7e5, 2e6, 2e7));

// --- CISPR 25 limits: monotone in class, average 10 dB under peak ----------
class CisprClasses : public ::testing::TestWithParam<int> {};

TEST_P(CisprClasses, MonotoneAndConsistent) {
  const int cls = GetParam();
  for (const emc::Cispr25Band& b : emc::cispr25_bands()) {
    const double f = 0.5 * (b.f_lo_hz + b.f_hi_hz);
    const auto pk = emc::cispr25_limit_dbuv(f, cls);
    ASSERT_TRUE(pk.has_value());
    const auto avg = emc::cispr25_limit_dbuv(f, cls, emc::Detector::kAverage);
    EXPECT_DOUBLE_EQ(*pk - *avg, 10.0);
    if (cls > 1) {
      EXPECT_LT(*pk, *emc::cispr25_limit_dbuv(f, cls - 1)) << b.service;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, CisprClasses, ::testing::Range(1, 6));

// --- field-solver reciprocity over random poses -----------------------------
class MutualReciprocity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutualReciprocity, RandomPoses) {
  num::Rng rng(GetParam());
  const peec::ComponentFieldModel a = peec::x_capacitor("A");
  const peec::ComponentFieldModel b = peec::bobbin_coil("B");
  const peec::CouplingExtractor ex{{4, 1}};  // cheap quadrature, same both ways
  for (int trial = 0; trial < 3; ++trial) {
    const peec::Pose pa{{rng.uniform(-20, 20), rng.uniform(-20, 20), 0.0},
                        rng.uniform(0.0, 360.0)};
    const peec::Pose pb{{rng.uniform(25, 60), rng.uniform(-20, 20), 0.0},
                        rng.uniform(0.0, 360.0)};
    const peec::PlacedModel ma{&a, pa};
    const peec::PlacedModel mb{&b, pb};
    const double m_ab = ex.mutual(ma, mb).raw();
    const double m_ba = ex.mutual(mb, ma).raw();
    EXPECT_NEAR(m_ab, m_ba, 1e-15 + 1e-9 * std::fabs(m_ab));
    // Rigid translation of BOTH models leaves the mutual unchanged.
    const geom::Vec3 shift{rng.uniform(-10, 10), rng.uniform(-10, 10), 0.0};
    const peec::PlacedModel ma2{&a, {pa.position + shift, pa.rot_deg}};
    const peec::PlacedModel mb2{&b, {pb.position + shift, pb.rot_deg}};
    EXPECT_NEAR(ex.mutual(ma2, mb2).raw(), m_ab, 1e-15 + 1e-6 * std::fabs(m_ab));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutualReciprocity,
                         ::testing::Range<std::uint64_t>(100, 108));

}  // namespace
}  // namespace emi
