// Randomized property tests for the placement stack: generate random but
// well-formed designs (components, rules, groups, keepouts, nets) from a
// seed and check the engine invariants that must hold on EVERY input:
//   * auto_place output passes the full DRC whenever everything placed
//   * compaction and refinement never break a legal layout
//   * the ASCII interface round-trips the design losslessly
//   * is_legal() agrees with the DRC on the placements the placer produced
#include <gtest/gtest.h>

#include <sstream>

#include "src/io/design_format.hpp"
#include "src/numeric/rng.hpp"
#include "src/place/compactor.hpp"
#include "src/place/drc.hpp"
#include "src/place/placer.hpp"
#include "src/place/refine.hpp"

namespace emi::place {
namespace {

Design random_design(std::uint64_t seed) {
  num::Rng rng(seed);
  Design d;
  d.set_clearance(Millimeters{rng.uniform(0.5, 1.5)});

  const double bw = rng.uniform(90.0, 160.0);
  const double bh = rng.uniform(70.0, 120.0);
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {bw, bh}))});

  // Occasionally a keepout in a corner (kept small so designs stay feasible).
  if (rng.uniform() < 0.5) {
    const double kw = rng.uniform(10.0, 25.0);
    const double kh = rng.uniform(10.0, 20.0);
    d.add_keepout({"ko", 0,
                   {geom::Rect::from_corners({bw - kw, 0.0}, {bw, kh}),
                    rng.uniform() < 0.3 ? 6.0 : 0.0, 1e9}});
  }

  const std::size_t n = 4 + rng.below(8);
  const char* groups[] = {"", "g1", "g2"};
  for (std::size_t i = 0; i < n; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = rng.uniform(5.0, 18.0);
    c.depth_mm = rng.uniform(4.0, 14.0);
    c.height_mm = rng.uniform(2.0, 15.0);
    c.axis_deg = rng.uniform() < 0.8 ? 90.0 : 0.0;
    c.group = groups[rng.below(3)];
    d.add_component(c);
  }

  // Sparse EMD rules.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.35) {
        d.add_emd_rule("C" + std::to_string(i), "C" + std::to_string(j),
                       Millimeters{rng.uniform(8.0, 22.0)});
      }
    }
  }

  // A few random 2-3 pin nets.
  const std::size_t n_nets = 1 + rng.below(4);
  for (std::size_t k = 0; k < n_nets; ++k) {
    Net net;
    net.name = "N" + std::to_string(k);
    const std::size_t pins = 2 + rng.below(2);
    for (std::size_t p = 0; p < pins; ++p) {
      net.pins.push_back({"C" + std::to_string(rng.below(n)), ""});
    }
    d.add_net(net);
  }
  return d;
}

class PlaceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlaceFuzz, EngineInvariants) {
  const std::uint64_t seed = GetParam();
  Design d = random_design(seed);
  Layout layout = Layout::unplaced(d);
  const PlaceStats stats = auto_place(d, layout);

  // Placement either fully succeeds with a clean DRC, or reports failures
  // honestly (unplaced components show up in the DRC as kUnplaced only).
  const DrcEngine drc(d);
  const DrcReport rep = drc.check(layout);
  if (stats.failed == 0) {
    EXPECT_TRUE(rep.clean()) << "seed " << seed;
  } else {
    EXPECT_EQ(rep.count(ViolationKind::kUnplaced), stats.failed) << "seed " << seed;
    for (const Violation& v : rep.violations) {
      EXPECT_EQ(v.kind, ViolationKind::kUnplaced) << "seed " << seed << ": "
                                                  << to_string(v.kind);
    }
  }

  // is_legal agrees with the DRC for each placed component.
  const SequentialPlacer placer(d);
  for (std::size_t i = 0; i < d.components().size(); ++i) {
    if (layout.placements[i].placed && stats.failed == 0) {
      EXPECT_TRUE(placer.is_legal(layout, i, layout.placements[i]))
          << "seed " << seed << " comp " << d.components()[i].name;
    }
  }

  if (stats.failed == 0) {
    // Compaction keeps legality and never grows the area.
    Layout compacted = layout;
    const CompactionResult cres = compact_layout(d, compacted);
    EXPECT_LE(cres.area_after_mm2, cres.area_before_mm2 + 1e-9) << "seed " << seed;
    EXPECT_TRUE(drc.check(compacted).clean()) << "seed " << seed;

    // Refinement keeps legality and never worsens the cost.
    Layout refined = layout;
    RefineOptions ropt;
    ropt.iterations = 600;
    ropt.seed = seed + 1;
    const RefineResult rres = refine_layout(d, refined, ropt);
    EXPECT_LE(rres.cost_after, rres.cost_before + 1e-9)
        << "seed " << seed;
    EXPECT_TRUE(drc.check(refined).clean()) << "seed " << seed;
  }

  // ASCII round trip is lossless at the structural level.
  std::stringstream buf;
  io::save_design(buf, d, &layout);
  const io::LoadedDesign reloaded = io::load_design(buf);
  EXPECT_EQ(reloaded.design.components().size(), d.components().size());
  EXPECT_EQ(reloaded.design.emd_rules().size(), d.emd_rules().size());
  EXPECT_EQ(reloaded.design.nets().size(), d.nets().size());
  EXPECT_EQ(reloaded.design.keepouts().size(), d.keepouts().size());
  for (std::size_t i = 0; i < d.components().size(); ++i) {
    EXPECT_EQ(reloaded.layout.placements[i].placed, layout.placements[i].placed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaceFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace emi::place
