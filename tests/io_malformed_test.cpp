// Malformed-input hardening for the design format: whatever garbage comes
// in, the parser answers with a ParseError (or, through the structured
// surface, a kParseError Status carrying the line number) - never a crash,
// never a silently poisoned design.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/io/design_format.hpp"
#include "src/numeric/rng.hpp"

namespace emi::io {
namespace {

constexpr const char* kSample = R"(# sample design
boards 2
clearance 0.8
component CX1 26 10 12 axis=90 group=filter rot=0,90,180,270 prefrot=90
component LF 14 16 14 axis=90 group=filter areas=main prefareas=main
component CONN 18 8 10
pin CX1 1 -11.25 0
pin CX1 2 11.25 0
net N1 maxlen=80 CX1.1 LF
net N2 CX1.2 CONN
area main 0 0 0 100 0 100 60 0 60
area aux 1 0 0 50 0 50 40 0 40
keepout heatsink 0 70 10 95 40 0 1e9
keepout rib 0 0 50 100 60 8 1e9
pemd CX1 LF 21.5
place CONN 10 6 0 0
)";

// Parse `text` through both surfaces and check they agree: either both
// succeed, or load_design throws ParseError and try_load_design returns a
// kParseError Status mentioning the same line.
void expect_parse_or_diagnose(const std::string& text) {
  std::size_t thrown_line = 0;
  bool threw = false;
  try {
    std::istringstream in(text);
    load_design(in);
  } catch (const ParseError& e) {
    threw = true;
    thrown_line = e.line_no;
  }
  // Any other exception type propagates and fails the test.

  std::istringstream in2(text);
  const core::Result<LoadedDesign> r = try_load_design(in2);
  EXPECT_EQ(r.ok(), !threw);
  if (threw) {
    EXPECT_EQ(r.status().code(), core::ErrorCode::kParseError);
    EXPECT_EQ(r.status().stage(), "io.design_format");
    EXPECT_NE(r.status().message().find("line " + std::to_string(thrown_line)),
              std::string::npos)
        << r.status().to_string();
  }
}

TEST(MalformedInput, NonFiniteFieldsAreParseErrors) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999", "-1e999"}) {
    std::istringstream in("boards 1\ncomponent C1 " + std::string(bad) + " 4 2\n");
    const core::Result<LoadedDesign> r = try_load_design(in);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), core::ErrorCode::kParseError) << bad;
    EXPECT_NE(r.status().message().find("line 2"), std::string::npos) << bad;
  }
}

TEST(MalformedInput, NonNumericFieldsAreParseErrors) {
  expect_parse_or_diagnose("component C1 abc 4 2\n");
  expect_parse_or_diagnose("component C1 5 4 2 axis=12abc\n");
  expect_parse_or_diagnose("clearance wide\n");
  expect_parse_or_diagnose("boards many\n");
}

TEST(MalformedInput, TruncatedLinesAreParseErrors) {
  expect_parse_or_diagnose("component C1\n");
  expect_parse_or_diagnose("component C1 5\n");
  expect_parse_or_diagnose("pin C1 p 0\n");
  expect_parse_or_diagnose("keepout k 0 1 2 3\n");
  expect_parse_or_diagnose("pemd A\n");
  expect_parse_or_diagnose("place C1 1 2\n");
}

TEST(MalformedInput, DuplicateComponentNamesAreParseErrors) {
  std::istringstream in("component A 1 1 1\ncomponent A 2 2 2\n");
  const core::Result<LoadedDesign> r = try_load_design(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::ErrorCode::kParseError);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(MalformedInput, OversizedCountsAreParseErrors) {
  expect_parse_or_diagnose("boards 1000000\n");
  expect_parse_or_diagnose("boards 0\n");
  expect_parse_or_diagnose("boards -3\n");
  expect_parse_or_diagnose("component C1 5 4 2 board=70000\n");
  expect_parse_or_diagnose("component C1 5 4 2 board=-2\n");
  expect_parse_or_diagnose("area a 99999999999 0 0 1 0 1 1 0 1\n");
  expect_parse_or_diagnose("clearance -1\n");
}

TEST(MalformedInput, UnreadableFileIsIoError) {
  const core::Result<LoadedDesign> r = try_load_design_file("/nonexistent/x.design");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::ErrorCode::kIoError);
  EXPECT_NE(r.status().message().find("/nonexistent/x.design"), std::string::npos);
}

TEST(MalformedInput, TryLoadLayoutDiagnoses) {
  std::istringstream din(kSample);
  const LoadedDesign ld = load_design(din);
  {
    std::istringstream in("place CX1 1 2 0 0\n");
    EXPECT_TRUE(try_load_layout(in, ld.design).ok());
  }
  for (const char* bad :
       {"place NOPE 1 2 0 0\n", "place CX1 nan 2 0 0\n", "place CX1 1 2 0 9999\n",
        "component X 1 1 1\n", "place CX1 1 2\n"}) {
    std::istringstream in(bad);
    const core::Result<place::Layout> r = try_load_layout(in, ld.design);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), core::ErrorCode::kParseError) << bad;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos) << bad;
  }
}

// Property fuzz: random structured mutations of a valid design - truncated
// lines, hostile token substitutions, duplicated lines, random splices -
// must always come back "ok or ParseError". 500 seeds, each mutating 1-4
// spots.
TEST(MalformedInput, FuzzedMutationsNeverEscapeTheTaxonomy) {
  std::vector<std::string> lines;
  {
    std::istringstream in(kSample);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  const std::vector<std::string> hostile = {
      "nan", "inf", "-inf", "1e999", "abc", "12abc", "", "=",
      "board=99999999999999999999", "rot=1,,2", "\t", "#",
  };

  num::Rng rng(20260805);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> mutated = lines;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t li = rng.below(mutated.size());
      switch (rng.below(4)) {
        case 0: {  // truncate the line at a random byte
          std::string& s = mutated[li];
          s = s.substr(0, rng.below(s.size() + 1));
          break;
        }
        case 1: {  // replace one whitespace token with a hostile one
          std::istringstream ts(mutated[li]);
          std::vector<std::string> toks;
          std::string t;
          while (ts >> t) toks.push_back(t);
          if (toks.empty()) break;
          toks[rng.below(toks.size())] = hostile[rng.below(hostile.size())];
          std::string joined;
          for (const std::string& tk : toks) joined += tk + " ";
          mutated[li] = joined;
          break;
        }
        case 2:  // duplicate a line (e.g. a component -> duplicate name)
          mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(li),
                         mutated[li]);
          break;
        default:  // splice a random line to another position
          mutated.push_back(mutated[li]);
          break;
      }
    }
    std::string text;
    for (const std::string& l : mutated) text += l + "\n";
    SCOPED_TRACE("iter " + std::to_string(iter));
    expect_parse_or_diagnose(text);
  }
}

// The io fault site turns numeric fields into deterministic parse faults:
// same seed, same failing line, run after run.
TEST(MalformedInput, InjectedIoFaultsAreDeterministicParseErrors) {
  struct Guard {
    ~Guard() { core::FaultInjector::instance().disarm(); }
  } guard;
  core::FaultInjector::instance().configure(core::FaultSite::kIo, 0.3, 42);

  const auto diagnose = [] {
    std::istringstream in(kSample);
    const core::Result<LoadedDesign> r = try_load_design(in);
    return r.ok() ? std::string("ok") : r.status().to_string();
  };
  const std::string first = diagnose();
  EXPECT_NE(first, "ok");  // 0.3 over this many numeric fields: fires
  EXPECT_NE(first.find("injected parse fault"), std::string::npos);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(diagnose(), first);

  core::FaultInjector::instance().disarm();
  EXPECT_EQ(diagnose(), "ok");
}

}  // namespace
}  // namespace emi::io
