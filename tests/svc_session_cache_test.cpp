// Two-tier extraction cache sharing across sessions: a private tier backed
// by a shared read-mostly global tier serves bit-identical values, publishes
// computed entries for later sessions, and keeps its monotone counters sane
// under N concurrent sessions with overlapping geometries. The concurrency
// battery here is the `ctest -L serve` TSan target for the cache layer.
#include "src/peec/extraction_cache.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/peec/component_model.hpp"
#include "src/peec/coupling.hpp"
#include "src/svc/session.hpp"

namespace emi::peec {
namespace {

MutualCacheKey key_of(std::uint64_t seed) {
  MutualCacheKey k;
  k.digest_lo = seed;
  k.digest_hi = seed ^ 0x9e3779b97f4a7c15ull;
  k.quad = 4;
  return k;
}

TEST(ExtractionCacheTiers, PrivateStorePublishesToRoot) {
  auto global = std::make_shared<ExtractionCache>();
  ExtractionCache session_a(global);
  ExtractionCache session_b(global);

  session_a.store_mutual(key_of(1), 42.0);
  session_a.store_self(11, 7.0);

  // Session B has never seen the keys locally, but the published root copy
  // serves it: miss on B's tier, hit on the global tier.
  EXPECT_EQ(session_b.lookup_mutual(key_of(1)), 42.0);
  EXPECT_EQ(session_b.lookup_self(11), 7.0);
  EXPECT_EQ(session_b.stats().mutual_misses, 1u);
  EXPECT_EQ(session_b.stats().self_misses, 1u);
  EXPECT_EQ(global->stats().mutual_hits, 1u);
  EXPECT_EQ(global->stats().self_hits, 1u);
}

TEST(ExtractionCacheTiers, PrivateTierServesBeforeParent) {
  auto global = std::make_shared<ExtractionCache>();
  ExtractionCache session(global);
  session.store_mutual(key_of(2), 5.0);
  EXPECT_EQ(session.lookup_mutual(key_of(2)), 5.0);
  EXPECT_EQ(session.stats().mutual_hits, 1u);
  // The probe never reached the global tier.
  EXPECT_EQ(global->stats().mutual_hits, 0u);
  EXPECT_EQ(global->stats().mutual_misses, 0u);
}

TEST(ExtractionCacheTiers, MissFallsThroughEveryTier) {
  auto global = std::make_shared<ExtractionCache>();
  ExtractionCache session(global);
  EXPECT_FALSE(session.lookup_mutual(key_of(3)).has_value());
  EXPECT_EQ(session.stats().mutual_misses, 1u);
  EXPECT_EQ(global->stats().mutual_misses, 1u);
}

TEST(ExtractionCacheTiers, BatchLookupMixesTiers) {
  auto global = std::make_shared<ExtractionCache>();
  ExtractionCache session(global);
  global->store_mutual(key_of(10), 1.0);
  session.store_mutual(key_of(11), 2.0);

  const MutualCacheKey keys[3] = {key_of(10), key_of(11), key_of(12)};
  double out[3] = {0, 0, 0};
  char found[3] = {0, 0, 0};
  session.lookup_mutual_batch(keys, out, found);
  EXPECT_TRUE(found[0]);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_TRUE(found[1]);
  EXPECT_EQ(out[1], 2.0);
  EXPECT_FALSE(found[2]);
}

// Session-tier publish-to-root racing the root's evict-oldest-half ring:
// several session tiers push disjoint key ranges far past kMutualCap (every
// store publishes to the shared root, so the root evicts repeatedly) while
// readers hammer single and batched lookups. Values are pure functions of
// their keys, so the only legal outcomes are "absent" or "exact stored
// bits" - and the whole storm must be TSan-clean (the gap PR 6 left open).
TEST(ExtractionCacheTiers, PublishToRootRacesEvictOldestHalf) {
  auto global = std::make_shared<ExtractionCache>();
  constexpr std::uint64_t kPerWriter = ExtractionCache::kMutualCap +
                                       ExtractionCache::kMutualCap / 2;
  constexpr int kWriters = 2;
  const auto value_of = [](std::uint64_t seed) {
    return 0.25 + 1e-9 * static_cast<double>(seed);
  };
  const auto writer_key = [&](int w, std::uint64_t i) {
    return key_of((static_cast<std::uint64_t>(w + 1) << 40) | i);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ExtractionCache session(global);
      // Alternate single stores and batched stores so both publish paths
      // race the eviction ring.
      std::vector<MutualCacheKey> keys;
      std::vector<double> vals;
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const MutualCacheKey k = writer_key(w, i);
        if (i % 3 == 0) {
          session.store_mutual(k, value_of(k.digest_lo));
        } else {
          keys.push_back(k);
          vals.push_back(value_of(k.digest_lo));
          if (keys.size() == 64) {
            session.store_mutual_batch(keys, vals);
            keys.clear();
            vals.clear();
          }
        }
      }
      if (!keys.empty()) session.store_mutual_batch(keys, vals);
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  threads.emplace_back([&] {
    // Reader: single probes through a session tier plus batched probes on
    // the root, across both writers' ranges, while eviction churns.
    ExtractionCache session(global);
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MutualCacheKey k = writer_key(static_cast<int>(i % kWriters),
                                          (i * 977) % kPerWriter);
      if (const std::optional<double> v = session.lookup_mutual(k)) {
        EXPECT_EQ(*v, value_of(k.digest_lo));
        served.fetch_add(1, std::memory_order_relaxed);
      }
      std::array<MutualCacheKey, 8> bk;
      std::array<double, 8> bv{};
      std::array<char, 8> bf{};
      for (std::size_t j = 0; j < bk.size(); ++j) {
        bk[j] = writer_key(static_cast<int>(j % kWriters),
                           (i + j * 131) % kPerWriter);
      }
      global->lookup_mutual_batch(bk, bv, bf);
      for (std::size_t j = 0; j < bk.size(); ++j) {
        if (bf[j]) {
          EXPECT_EQ(bv[j], value_of(bk[j].digest_lo));
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++i;
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  // The reader raced real traffic (the tail of each writer's range outlives
  // eviction, so probes do land).
  EXPECT_GT(served.load(), 0u);
  // The storm leaves the root fully functional: a fresh key round-trips,
  // and whatever survived the eviction churn still carries exact bits (a
  // writer's tail can legitimately be evicted by the *other* writer's later
  // stores, so presence is not asserted - purity is).
  global->store_mutual(key_of(0xdeadull), 9.5);
  EXPECT_EQ(global->lookup_mutual(key_of(0xdeadull)), 9.5);
  std::uint64_t resident = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (std::uint64_t i = kPerWriter - 64; i < kPerWriter; ++i) {
      const MutualCacheKey k = writer_key(w, i);
      if (const std::optional<double> v = global->lookup_mutual(k)) {
        EXPECT_EQ(*v, value_of(k.digest_lo));
        ++resident;
      }
    }
  }
  // Both ranges together exceed capacity only 3:2, so the newest tails
  // cannot all have been evicted.
  EXPECT_GT(resident, 0u);
}

TEST(SessionManager, SessionsAreStableAndShareOneGlobal) {
  svc::SessionManager sessions;
  const auto a1 = sessions.session_cache("alice");
  const auto a2 = sessions.session_cache("alice");
  const auto b = sessions.session_cache("bob");
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_NE(a1.get(), b.get());
  EXPECT_EQ(a1->parent().get(), sessions.global_cache().get());
  EXPECT_EQ(b->parent().get(), sessions.global_cache().get());
  EXPECT_EQ(sessions.session_count(), 2u);
}

// Two extractors in different sessions over the same geometry: the second
// session is served entirely from the first session's published entries and
// the values are bit-identical.
TEST(SessionManager, SecondSessionServedFromGlobalBitIdentical) {
  svc::SessionManager sessions;
  const ComponentFieldModel ca = x_capacitor("CA");
  const ComponentFieldModel cb = x_capacitor("CB");
  const PlacedModel a{&ca, {{0.0, 0.0, 0.0}, 30.0}};
  const PlacedModel b{&cb, {{25.0, 4.0, 0.0}, 75.0}};

  CouplingExtractor ex1({}, {}, sessions.session_cache("one"));
  const double m1 = ex1.mutual(a, b).raw();
  ASSERT_EQ(ex1.cache_stats().mutual_misses, 1u);

  const CacheTierStats global_before = sessions.global_cache()->stats();
  CouplingExtractor ex2({}, {}, sessions.session_cache("two"));
  const double m2 = ex2.mutual(a, b).raw();
  EXPECT_EQ(m1, m2);
  // Served from cache (per-extractor hit), computed nothing new: the global
  // tier's miss count did not move.
  EXPECT_EQ(ex2.cache_stats().mutual_hits, 1u);
  EXPECT_EQ(ex2.cache_stats().mutual_misses, 0u);
  EXPECT_EQ(sessions.global_cache()->stats().mutual_misses,
            global_before.mutual_misses);
}

// N concurrent sessions with overlapping geometries hammer one shared global
// tier. Every session must read the same bits, counters stay monotone, and
// once the global tier is warm a fresh session causes zero new global misses
// (a deterministic hit/miss ledger, not a race).
TEST(SessionManager, ConcurrentSessionsShareDeterministically) {
  svc::SessionManager sessions;
  const ComponentFieldModel model = x_capacitor("C");
  constexpr int kSessions = 8;
  constexpr int kPairs = 6;

  // Warm the global tier once, serially, to get the reference bits.
  std::vector<double> reference(kPairs);
  {
    CouplingExtractor warm({}, {}, sessions.session_cache("warm"));
    for (int p = 0; p < kPairs; ++p) {
      const PlacedModel a{&model, {{0.0, 0.0, 0.0}, 0.0}};
      const PlacedModel b{&model, {{20.0 + 3.0 * p, 5.0, 0.0}, 90.0}};
      reference[p] = warm.mutual(a, b).raw();
    }
  }
  const CacheTierStats warm_stats = sessions.global_cache()->stats();

  std::vector<std::thread> threads;
  std::vector<std::vector<double>> got(kSessions,
                                       std::vector<double>(kPairs, 0.0));
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      CouplingExtractor ex({}, {},
                           sessions.session_cache("client-" + std::to_string(s)));
      for (int p = 0; p < kPairs; ++p) {
        const PlacedModel a{&model, {{0.0, 0.0, 0.0}, 0.0}};
        const PlacedModel b{&model, {{20.0 + 3.0 * p, 5.0, 0.0}, 90.0}};
        got[s][p] = ex.mutual(a, b).raw();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int s = 0; s < kSessions; ++s) {
    for (int p = 0; p < kPairs; ++p) EXPECT_EQ(got[s][p], reference[p]);
  }
  const CacheTierStats after = sessions.global_cache()->stats();
  // Warm tier: no concurrent session computed anything new.
  EXPECT_EQ(after.mutual_misses, warm_stats.mutual_misses);
  EXPECT_EQ(after.self_misses, warm_stats.self_misses);
  // And every session's probes were served (hits are monotone counters).
  EXPECT_EQ(after.mutual_hits,
            warm_stats.mutual_hits + kSessions * static_cast<unsigned>(kPairs));
}

}  // namespace
}  // namespace emi::peec
