#include <gtest/gtest.h>

#include "src/core/fault_injection.hpp"
#include "src/core/status.hpp"
#include "src/numeric/lu.hpp"
#include "src/numeric/matrix.hpp"
#include "src/numeric/rng.hpp"

namespace emi::num {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  MatrixD a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const MatrixD i3 = MatrixD::identity(3);
  EXPECT_EQ(a * i3, a);
  const std::vector<double> v{1.0, 0.0, -1.0};
  const std::vector<double> av = a * v;
  EXPECT_DOUBLE_EQ(av[0], -2.0);
  EXPECT_DOUBLE_EQ(av[1], -2.0);
}

TEST(Lu, Solves2x2) {
  MatrixD a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  MatrixD a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  MatrixD a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Lu, ThrowsOnNonSquare) {
  EXPECT_THROW(Lu<double>(MatrixD(2, 3)), std::invalid_argument);
}

TEST(Lu, ComplexSystem) {
  using C = Complex;
  MatrixC a(2, 2);
  a(0, 0) = C{1, 1};
  a(0, 1) = C{0, 0};
  a(1, 0) = C{0, 0};
  a(1, 1) = C{0, 2};
  const auto x = solve(a, {C{2, 0}, C{4, 0}});
  EXPECT_NEAR(std::abs(x[0] - C{1, -1}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C{0, -2}), 0.0, 1e-12);
}

TEST(Inverse, RoundTrip) {
  MatrixD a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 3;
  a(1, 2) = 1;
  a(2, 1) = 1;
  a(2, 2) = 5;
  const MatrixD inv = inverse(a);
  const MatrixD prod = a * inv;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

// Property: random well-conditioned systems solve to residual ~0.
class RandomSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSolve, ResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(1234 + n);
  MatrixD a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonal dominance
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const auto x = solve(a, b);
  const auto ax = a * x;
  for (std::size_t r = 0; r < n; ++r) EXPECT_NEAR(ax[r], b[r], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSolve, ::testing::Values(1, 2, 5, 10, 30, 80));

TEST(LuStatus, FactorReportsSingularWithColumn) {
  MatrixD a(2, 2);  // rank 1
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  const core::Result<Lu<double>> lu = Lu<double>::factor(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), core::ErrorCode::kSingular);
  EXPECT_EQ(lu.status().stage(), "numeric.lu");
  EXPECT_NE(lu.status().message().find("column 1"), std::string::npos)
      << lu.status().to_string();
  // try_solve on the same matrix reports instead of throwing.
  const core::Result<std::vector<double>> x = try_solve(a, {1.0, 2.0});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), core::ErrorCode::kSingular);
}

TEST(LuStatus, NearSingularPivotGivesLargeConditionEstimate) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-14;
  // Default threshold (1e-300): factorizes, but the pivot-ratio estimate
  // exposes how close to singular the system is.
  const core::Result<Lu<double>> lu = Lu<double>::factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_GE(lu.value().condition_estimate(), 1e13);
  EXPECT_TRUE(lu.value().try_solve({1.0, 1.0}).ok());
}

TEST(LuStatus, PivotThresholdFlagsNearSingular) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-14;
  const core::Result<Lu<double>> lu = Lu<double>::factor(a, {1e-10});
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), core::ErrorCode::kSingular);
  // The legacy throwing surface raises the same Status as a StatusError.
  try {
    const Lu<double> l2(a, {1e-10});
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), core::ErrorCode::kSingular);
    EXPECT_EQ(e.status().stage(), "numeric.lu");
  }
}

TEST(LuStatus, InjectedLuFaultReportsInjectedFault) {
  struct Guard {
    ~Guard() { core::FaultInjector::instance().disarm(); }
  } guard;
  core::FaultInjector::instance().configure(core::FaultSite::kLu, 1.0, 42);

  const MatrixD a = MatrixD::identity(3);
  const core::Result<Lu<double>> lu = Lu<double>::factor(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), core::ErrorCode::kInjectedFault);
  EXPECT_NE(lu.status().message().find("EMI_FAULT_INJECT"), std::string::npos);
  EXPECT_GT(core::FaultInjector::instance().fired(core::FaultSite::kLu), 0u);

  core::FaultInjector::instance().disarm();
  EXPECT_TRUE(Lu<double>::factor(a).ok());
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = c.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, BelowRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

}  // namespace
}  // namespace emi::num
