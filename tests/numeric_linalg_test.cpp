#include <gtest/gtest.h>

#include "src/numeric/lu.hpp"
#include "src/numeric/matrix.hpp"
#include "src/numeric/rng.hpp"

namespace emi::num {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  MatrixD a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const MatrixD i3 = MatrixD::identity(3);
  EXPECT_EQ(a * i3, a);
  const std::vector<double> v{1.0, 0.0, -1.0};
  const std::vector<double> av = a * v;
  EXPECT_DOUBLE_EQ(av[0], -2.0);
  EXPECT_DOUBLE_EQ(av[1], -2.0);
}

TEST(Lu, Solves2x2) {
  MatrixD a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  MatrixD a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  MatrixD a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Lu, ThrowsOnNonSquare) {
  EXPECT_THROW(Lu<double>(MatrixD(2, 3)), std::invalid_argument);
}

TEST(Lu, ComplexSystem) {
  using C = Complex;
  MatrixC a(2, 2);
  a(0, 0) = C{1, 1};
  a(0, 1) = C{0, 0};
  a(1, 0) = C{0, 0};
  a(1, 1) = C{0, 2};
  const auto x = solve(a, {C{2, 0}, C{4, 0}});
  EXPECT_NEAR(std::abs(x[0] - C{1, -1}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C{0, -2}), 0.0, 1e-12);
}

TEST(Inverse, RoundTrip) {
  MatrixD a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 3;
  a(1, 2) = 1;
  a(2, 1) = 1;
  a(2, 2) = 5;
  const MatrixD inv = inverse(a);
  const MatrixD prod = a * inv;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

// Property: random well-conditioned systems solve to residual ~0.
class RandomSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSolve, ResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(1234 + n);
  MatrixD a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonal dominance
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const auto x = solve(a, b);
  const auto ax = a * x;
  for (std::size_t r = 0; r < n; ++r) EXPECT_NEAR(ax[r], b[r], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSolve, ::testing::Values(1, 2, 5, 10, 30, 80));

TEST(Rng, DeterministicAndUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = c.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, BelowRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

}  // namespace
}  // namespace emi::num
