#include "src/ckt/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace emi::ckt {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(AcSolve, ResistiveDivider) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_resistor("R2", "out", "0", 1000.0);
  const AcSolution sol = ac_solve(c, {1e3, 1e6});
  for (std::size_t fi = 0; fi < 2; ++fi) {
    EXPECT_NEAR(std::abs(sol.voltage("out", fi)), 0.5, 1e-9);
    EXPECT_NEAR(std::abs(sol.voltage("in", fi)), 1.0, 1e-9);
  }
}

TEST(AcSolve, RcLowPassCornerFrequency) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_capacitor("C1", "out", "0", 1e-6);
  const double fc = 1.0 / (kTwoPi * 1000.0 * 1e-6);
  const AcSolution sol = ac_solve(c, {fc, 10.0 * fc});
  // At the corner |H| = 1/sqrt(2); a decade above ~ -20 dB.
  EXPECT_NEAR(std::abs(sol.voltage("out", 0)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::abs(sol.voltage("out", 1)), 1.0 / std::sqrt(101.0), 1e-6);
  // Phase at the corner is -45 degrees.
  EXPECT_NEAR(std::arg(sol.voltage("out", 0)) * 180.0 / std::numbers::pi, -45.0, 0.01);
}

TEST(AcSolve, RlHighPass) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 100.0);
  c.add_inductor("L1", "out", "0", 1e-3);
  const double fc = 100.0 / (kTwoPi * 1e-3);  // R/(2 pi L)
  const AcSolution sol = ac_solve(c, {fc});
  EXPECT_NEAR(std::abs(sol.voltage("out", 0)), 1.0 / std::sqrt(2.0), 1e-6);
  // Inductor branch current = V_L / (j w L).
  const Complex il = sol.inductor_current("L1", 0);
  EXPECT_NEAR(std::abs(il), std::abs(sol.voltage("out", 0)) / (kTwoPi * fc * 1e-3),
              1e-9);
}

TEST(AcSolve, SeriesRlcResonance) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "a", 10.0);
  c.add_inductor("L1", "a", "b", 1e-3);
  c.add_capacitor("C1", "b", "0", 1e-9);
  const double f0 = 1.0 / (kTwoPi * std::sqrt(1e-3 * 1e-9));
  const AcSolution sol = ac_solve(c, {f0});
  // At resonance L and C cancel: the full source current flows, I = V/R.
  EXPECT_NEAR(std::abs(sol.inductor_current("L1", 0)), 0.1, 1e-4);
}

// Ideal transformer check: two coupled inductors with k -> voltage ratio
// approaches sqrt(L2/L1) * k on an open secondary.
TEST(AcSolve, CoupledInductorsOpenSecondary) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("Rs", "in", "p", 1.0);
  c.add_inductor("L1", "p", "0", 1e-3);
  c.add_inductor("L2", "s", "0", 4e-3);
  c.add_coupling("K12", "L1", "L2", 0.9);
  // Secondary loaded lightly to define the node.
  c.add_resistor("Rl", "s", "0", 1e9);
  const AcSolution sol = ac_solve(c, {100e3});
  const double ratio = std::abs(sol.voltage("s", 0)) / std::abs(sol.voltage("p", 0));
  EXPECT_NEAR(ratio, 0.9 * std::sqrt(4.0), 0.01);
}

TEST(AcSolve, CouplingSignMatters) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("Rs", "in", "p", 1.0);
  c.add_inductor("L1", "p", "0", 1e-3);
  c.add_inductor("L2", "s", "0", 1e-3);
  c.add_resistor("Rl", "s", "0", 1e9);
  c.add_coupling("K12", "L1", "L2", 0.5);
  const AcSolution pos = ac_solve(c, {100e3});

  Circuit c2;
  c2.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c2.add_resistor("Rs", "in", "p", 1.0);
  c2.add_inductor("L1", "p", "0", 1e-3);
  c2.add_inductor("L2", "s", "0", 1e-3);
  c2.add_resistor("Rl", "s", "0", 1e9);
  c2.add_coupling("K12", "L1", "L2", -0.5);
  const AcSolution neg = ac_solve(c2, {100e3});

  const Complex vp = pos.voltage("s", 0);
  const Complex vn = neg.voltage("s", 0);
  EXPECT_NEAR(std::abs(vp + vn), 0.0, 1e-9);  // opposite phase
  EXPECT_NEAR(std::abs(vp), std::abs(vn), 1e-12);
}

TEST(AcSolve, SourceScaleShapesOutput) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1.0);
  c.add_resistor("R2", "out", "0", 1.0);
  AcOptions opt;
  opt.source_scale = {2.0, 0.5};
  const AcSolution sol = ac_solve(c, {1e3, 1e4}, opt);
  EXPECT_NEAR(std::abs(sol.voltage("out", 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(sol.voltage("out", 1)), 0.25, 1e-9);
  opt.source_scale = {1.0};
  EXPECT_THROW(ac_solve(c, {1e3, 1e4}, opt), std::invalid_argument);
}

TEST(AcSolve, CurrentSource) {
  Circuit c;
  c.add_isource("I1", "0", "out", Waveform::dc(0.0), 1e-3);
  c.add_resistor("R1", "out", "0", 1000.0);
  const AcSolution sol = ac_solve(c, {1e3});
  EXPECT_NEAR(std::abs(sol.voltage("out", 0)), 1.0, 1e-9);
}

TEST(AcSolve, SwitchFrozenState) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_switch("S1", "in", "out", Waveform::dc(1.0), 1.0, 1e9);
  c.add_resistor("R1", "out", "0", 1.0);
  const AcSolution on = ac_solve(c, {1e3});
  EXPECT_NEAR(std::abs(on.voltage("out", 0)), 0.5, 1e-6);
  // Freeze off: nearly nothing gets through.
  c.set_switch_ac_state("S1", false);
  const AcSolution off = ac_solve(c, {1e3});
  EXPECT_THROW(c.set_switch_ac_state("S9", true), std::invalid_argument);
  EXPECT_LT(std::abs(off.voltage("out", 0)), 1e-6);
}

TEST(AcSolve, Validation) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "0", 1.0);
  EXPECT_THROW(ac_solve(c, {0.0}), std::invalid_argument);
  EXPECT_THROW(ac_solve(c, {-5.0}), std::invalid_argument);
  const AcSolution sol = ac_solve(c, {1e3});
  EXPECT_THROW(sol.voltage("nope", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(std::abs(sol.voltage("0", 0)), 0.0);  // ground is 0
}

TEST(AcSolveChecked, CleanSweepHasNoFailures) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_resistor("R2", "out", "0", 1000.0);
  const CheckedAcSolution r = ac_solve_checked(c, {1e3, 1e6});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.failures.empty());
  EXPECT_NEAR(std::abs(r.solution.voltage("out", 0)), 0.5, 1e-9);
}

TEST(AcSolveChecked, ConditionLimitFlagsPointsInIndexOrder) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_resistor("R2", "out", "0", 1000.0);
  // The MNA pivots legitimately span many orders of magnitude (g_min vs the
  // source rows), so a tiny limit trips every frequency point.
  AcOptions opt;
  opt.condition_limit = 1.5;
  const CheckedAcSolution r = ac_solve_checked(c, {1e3, 1e5, 1e6}, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures.size(), 3u);
  for (std::size_t i = 0; i < r.failures.size(); ++i) {
    EXPECT_EQ(r.failures[i].freq_index, i);  // collected in ascending order
    EXPECT_EQ(r.failures[i].status.code(), core::ErrorCode::kIllConditioned);
    EXPECT_GT(r.failures[i].condition_estimate, opt.condition_limit);
  }
  EXPECT_DOUBLE_EQ(r.failures[1].freq_hz, 1e5);
}

TEST(AcSolveChecked, SingularPointReportsWithoutThrowing) {
  // Two ideal voltage sources across the same node pair: their branch rows
  // are identical, so the MNA matrix is exactly singular at every frequency.
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_vsource("V2", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "0", 1.0);
  const CheckedAcSolution r = ac_solve_checked(c, {1e3});
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].status.code(), core::ErrorCode::kSingular);
  EXPECT_EQ(r.failures[0].status.stage(), "numeric.lu");
}

TEST(AcSolve, RaisesStatusErrorNamingTheFailingIndex) {
  Circuit c;
  c.add_vsource("V1", "in", "0", Waveform::dc(0.0), 1.0);
  c.add_resistor("R1", "in", "out", 1000.0);
  c.add_resistor("R2", "out", "0", 1000.0);
  AcOptions opt;
  opt.condition_limit = 1.5;
  try {
    ac_solve(c, {1e3, 1e4}, opt);
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), core::ErrorCode::kIllConditioned);
    EXPECT_EQ(e.status().stage(), "ckt.ac");
    EXPECT_NE(e.status().message().find("index 0"), std::string::npos)
        << e.status().to_string();
    EXPECT_NE(e.status().message().find("2/2"), std::string::npos);
  }
}

TEST(Circuit, ElementValidation) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("R", "a", "b", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor("C", "a", "b", -1.0), std::invalid_argument);
  EXPECT_THROW(c.add_inductor("L", "a", "b", 0.0), std::invalid_argument);
  c.add_resistor("R1", "a", "b", 1.0);
  EXPECT_THROW(c.add_resistor("R1", "a", "b", 1.0), std::invalid_argument);  // dup
  c.add_inductor("L1", "a", "b", 1e-6);
  c.add_inductor("L2", "b", "0", 1e-6);
  EXPECT_THROW(c.add_coupling("K", "L1", "L1", 0.5), std::invalid_argument);
  EXPECT_THROW(c.add_coupling("K", "L1", "L2", 1.5), std::invalid_argument);
  EXPECT_THROW(c.inductor_index("L9"), std::invalid_argument);
}

TEST(Circuit, InductanceMatrixSymmetric) {
  Circuit c;
  c.add_inductor("L1", "a", "0", 2e-6);
  c.add_inductor("L2", "b", "0", 8e-6);
  c.add_coupling("K", "L1", "L2", 0.25);
  const auto m = c.inductance_matrix();
  EXPECT_DOUBLE_EQ(m[0][0], 2e-6);
  EXPECT_DOUBLE_EQ(m[1][1], 8e-6);
  EXPECT_DOUBLE_EQ(m[0][1], 0.25 * 4e-6);
  EXPECT_DOUBLE_EQ(m[0][1], m[1][0]);
}

TEST(Circuit, SetCouplingUpdatesInPlace) {
  Circuit c;
  c.add_inductor("L1", "a", "0", 1e-6);
  c.add_inductor("L2", "b", "0", 1e-6);
  c.set_coupling("L1", "L2", 0.3);
  ASSERT_EQ(c.couplings().size(), 1u);
  c.set_coupling("L2", "L1", 0.1);  // reversed order updates the same pair
  ASSERT_EQ(c.couplings().size(), 1u);
  EXPECT_DOUBLE_EQ(c.couplings()[0].k, 0.1);
}

// Each degenerate grid request surfaces as its own line-item
// kInvalidArgument instead of num::log_space's generic throw.
TEST(LogFrequencyGrid, HappyPathSpansTheRangeGeometrically) {
  const auto grid = log_frequency_grid(units::Hertz{150e3}, units::Hertz{108e6}, 50);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid.value().size(), 50u);
  EXPECT_DOUBLE_EQ(grid.value().front().raw(), 150e3);
  // The last point is f_lo * ratio^(n-1): a few ULPs of accumulated rounding
  // from f_hi, matching num::log_space so solved grids stay bit-identical
  // across both entry points.
  EXPECT_NEAR(grid.value().back().raw(), 108e6, 108e6 * 1e-12);
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_GT(grid.value()[i].raw(), grid.value()[i - 1].raw());
  }
}

TEST(LogFrequencyGrid, FewerThanTwoPointsIsInvalid) {
  for (std::size_t n : {0u, 1u}) {
    const auto r = log_frequency_grid(units::Hertz{1e3}, units::Hertz{1e6}, n);
    ASSERT_FALSE(r.ok()) << n;
    EXPECT_EQ(r.status().code(), core::ErrorCode::kInvalidArgument);
    EXPECT_EQ(r.status().stage(), "ckt.grid");
    EXPECT_NE(r.status().message().find(">= 2 points"), std::string::npos);
  }
}

TEST(LogFrequencyGrid, NonPositiveStartIsInvalid) {
  for (double lo : {0.0, -1.0}) {
    const auto r = log_frequency_grid(units::Hertz{lo}, units::Hertz{1e6}, 10);
    ASSERT_FALSE(r.ok()) << lo;
    EXPECT_EQ(r.status().code(), core::ErrorCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("must be positive"), std::string::npos);
  }
}

TEST(LogFrequencyGrid, EqualEndpointsAreInvalid) {
  const auto r = log_frequency_grid(units::Hertz{1e6}, units::Hertz{1e6}, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("equal"), std::string::npos);
}

TEST(LogFrequencyGrid, InvertedEndpointsAreInvalid) {
  const auto r = log_frequency_grid(units::Hertz{1e6}, units::Hertz{1e3}, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("inverted"), std::string::npos);
}

TEST(LogFrequencyGrid, RoundingToDuplicateAdjacentPointsIsInvalid) {
  // A span of a few ULP cannot host 200 distinct geometric points.
  const double lo = 1e6;
  const double hi = std::nextafter(std::nextafter(lo, 2e6), 2e6);
  const auto r = log_frequency_grid(units::Hertz{lo}, units::Hertz{hi}, 200);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("duplicate adjacent"), std::string::npos);
}

}  // namespace
}  // namespace emi::ckt
