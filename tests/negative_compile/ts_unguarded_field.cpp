// Negative-compile case (clang only): reading a EMI_GUARDED_BY field without
// holding its mutex must be rejected under -Werror=thread-safety. Run by
// check_syntax.cmake with EXTRA_FLAGS=-Wthread-safety;-Werror=thread-safety.
#include "src/core/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    emi::core::MutexLock lock(mu_);
    ++n_;
  }
  // MISUSE: reads n_ with mu_ not held.
  int peek() const { return n_; }

 private:
  mutable emi::core::Mutex mu_;
  int n_ EMI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.peek();
}
