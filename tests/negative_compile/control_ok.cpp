// Positive control for the negative-compile harness: the same shapes as the
// must-fail cases, written correctly. If this stops compiling the harness is
// reporting failures for the wrong reason.
#include "src/core/units.hpp"
#include "src/peec/winding.hpp"

int main() {
  using namespace emi;
  using namespace emi::units::literals;
  auto sum = 1.0_mm + 2.0_mm;
  units::Millimeters d{5.0};
  double x = d.raw();
  auto gain = 3.0_db + 6.0_db;
  const units::Millimeters radius = (0.01_m).to<units::Millimeters>();
  (void)sum;
  (void)x;
  (void)gain;
  (void)radius;
  return 0;
}
