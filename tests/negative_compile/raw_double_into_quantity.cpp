// MUST NOT COMPILE: implicit conversions between raw doubles and
// dimensioned quantities in either direction.
#include "src/core/units.hpp"

int main() {
  emi::units::Millimeters d = 5.0;  // construction is explicit
  double x = d;                     // reading back requires .raw()/.si()
  (void)x;
  return 0;
}
