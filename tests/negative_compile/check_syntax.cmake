# Runs the compiler front-end only (-fsyntax-only) on SOURCE and asserts the
# outcome named by EXPECT. Used for negative-compile cases that pull in
# library headers (no link step, so missing definitions don't matter).
#
#   cmake -DCOMPILER=<c++> -DROOT=<repo root> -DSOURCE=<file> \
#         -DEXPECT=FAIL|OK [-DEXTRA_FLAGS=<flag;flag...>] -P check_syntax.cmake
#
# EXTRA_FLAGS (optional, semicolon-separated) lets a battery opt into extra
# diagnostics - the thread-safety cases pass
# -Wthread-safety;-Werror=thread-safety under clang.
foreach(var COMPILER ROOT SOURCE EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_syntax.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_FLAGS)
  set(EXTRA_FLAGS "")
endif()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only ${EXTRA_FLAGS} -I${ROOT} ${SOURCE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "${SOURCE} compiled but is a negative-compile case; the type "
            "misuse it encodes is no longer rejected")
  endif()
  message(STATUS "rejected as expected: ${SOURCE}")
elseif(EXPECT STREQUAL "OK")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "positive control ${SOURCE} failed to compile:\n${err}")
  endif()
  message(STATUS "compiled as expected: ${SOURCE}")
else()
  message(FATAL_ERROR "EXPECT must be FAIL or OK, got '${EXPECT}'")
endif()
