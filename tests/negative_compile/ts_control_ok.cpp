// Positive control for the thread-safety battery: disciplined use of the
// same vocabulary (guarded fields read under a scoped lock, REQUIRES helpers
// called with the lock held, EXCLUDES respected) must compile cleanly under
// -Werror=thread-safety. Guards against the ts_* cases failing for reasons
// other than the misuse they encode.
#include "src/core/thread_annotations.hpp"

namespace {

class Ledger {
 public:
  void add(int v) EMI_EXCLUDES(mu_) {
    emi::core::MutexLock lock(mu_);
    add_locked(v);
  }
  int total() const EMI_EXCLUDES(mu_) {
    emi::core::MutexLock lock(mu_);
    return sum_;
  }

 private:
  void add_locked(int v) EMI_REQUIRES(mu_) { sum_ += v; }

  mutable emi::core::Mutex mu_;
  int sum_ EMI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.add(2);
  return l.total() == 2 ? 0 : 1;
}
