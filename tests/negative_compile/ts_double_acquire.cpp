// Negative-compile case (clang only): acquiring a capability that is already
// held (self-deadlock with std::mutex) must be rejected under
// -Werror=thread-safety.
#include "src/core/thread_annotations.hpp"

namespace {

class Queue {
 public:
  int drain() {
    emi::core::MutexLock outer(mu_);
    // MISUSE: mu_ is already held; this deadlocks at runtime.
    emi::core::MutexLock inner(mu_);
    return n_;
  }

 private:
  emi::core::Mutex mu_;
  int n_ EMI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  return q.drain();
}
