// MUST NOT COMPILE: dB values are log-domain; they add, never multiply.
#include "src/core/units.hpp"

int main() {
  using namespace emi::units::literals;
  auto nonsense = 3.0_db * 6.0_db;
  (void)nonsense;
  return 0;
}
