// MUST NOT COMPILE: a peec API taking Millimeters rejects Meters; crossing
// scales requires an explicit .to<Millimeters>().
#include "src/peec/winding.hpp"

int main() {
  using namespace emi;
  const units::Meters radius{0.01};
  const peec::SegmentPath r =
      peec::ring({0, 0, 0}, {0, 0, 1}, radius, 16, units::Millimeters{0.5});
  (void)r;
  return 0;
}
