// MUST NOT COMPILE: adding quantities of different dimensions.
#include "src/core/units.hpp"

int main() {
  using namespace emi::units;
  auto nonsense = Millimeters{1.0} + Hertz{1.0};
  (void)nonsense;
  return 0;
}
