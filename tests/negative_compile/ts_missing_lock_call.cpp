// Negative-compile case (clang only): calling an EMI_REQUIRES(mu_) helper
// without holding the mutex must be rejected under -Werror=thread-safety.
#include "src/core/thread_annotations.hpp"

namespace {

class Registry {
 public:
  void insert_locked() EMI_REQUIRES(mu_) { ++size_; }
  // MISUSE: calls the locked helper with mu_ not held.
  void insert() { insert_locked(); }

 private:
  emi::core::Mutex mu_;
  int size_ EMI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.insert();
  return 0;
}
