// The robustness layer's own tests: the Status/Result taxonomy, the
// deterministic fault injector, and the benign sites (pool, cache) whose
// injected faults must never change computed values - only scheduling and
// cache traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/core/parallel.hpp"
#include "src/core/status.hpp"
#include "src/core/thread_pool.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/peec/coupling.hpp"

namespace emi::core {
namespace {

// The injector is process-wide; disarm on scope exit so a failing assertion
// cannot leak injection into later tests.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_NO_THROW(s.throw_if_error());
}

TEST(Status, ToStringCarriesStageCodeAndMessage) {
  const Status s(ErrorCode::kSingular, "numeric.lu", "pivot 0 at column 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(), "numeric.lu: singular: pivot 0 at column 1");
}

TEST(Status, RaiseMapsCallerMistakesToInvalidArgument) {
  EXPECT_THROW(Status(ErrorCode::kInvalidArgument, "s", "m").raise(),
               std::invalid_argument);
  EXPECT_THROW(Status(ErrorCode::kParseError, "s", "m").raise(), std::invalid_argument);
  EXPECT_THROW(Status(ErrorCode::kFailedPrecondition, "s", "m").raise(),
               std::invalid_argument);
}

TEST(Status, RaiseWrapsRuntimeFailuresAsStatusError) {
  const Status s(ErrorCode::kSingular, "numeric.lu", "m");
  try {
    s.raise();
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), s);  // structured Status recoverable from the catch
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos);
  }
  // ...while staying catchable through the legacy vocabulary.
  EXPECT_THROW(s.raise(), std::runtime_error);
  EXPECT_THROW(Status(ErrorCode::kInjectedFault, "s", "m").raise(), std::runtime_error);
}

TEST(ResultT, HoldsValueOrStatus) {
  Result<int> v = 7;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(v.value_or(3), 7);

  Result<int> e = Status(ErrorCode::kIoError, "io", "nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(e.value_or(3), 3);
  EXPECT_THROW(e.value(), StatusError);
}

TEST(FaultInjector, SpecParsingAllOrNothing) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::instance();

  EXPECT_TRUE(inj.configure_from_spec("lu:0.5:42"));
  EXPECT_NEAR(inj.rate(FaultSite::kLu), 0.5, 1e-12);
  EXPECT_TRUE(fault::armed());

  EXPECT_TRUE(inj.configure_from_spec("pool:1:1,io:0.25:7"));
  EXPECT_DOUBLE_EQ(inj.rate(FaultSite::kPool), 1.0);
  EXPECT_NEAR(inj.rate(FaultSite::kIo), 0.25, 1e-12);

  // The deadline and ckpt sites parse like any other, alone or combined.
  EXPECT_TRUE(inj.configure_from_spec("deadline:1:3"));
  EXPECT_DOUBLE_EQ(inj.rate(FaultSite::kDeadline), 1.0);
  EXPECT_TRUE(inj.configure_from_spec("ckpt:0.5:9,deadline:0.25:4"));
  EXPECT_NEAR(inj.rate(FaultSite::kCkpt), 0.5, 1e-12);
  EXPECT_NEAR(inj.rate(FaultSite::kDeadline), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(inj.rate(FaultSite::kPool), 0.0);  // reconfigure replaces all

  // Malformed specs arm nothing - including the valid entries before the
  // broken one.
  inj.disarm();
  EXPECT_FALSE(inj.configure_from_spec("bogus:0.5:1"));
  EXPECT_FALSE(inj.configure_from_spec("lu:notanumber:1"));
  EXPECT_FALSE(inj.configure_from_spec("lu:0.5"));
  EXPECT_FALSE(inj.configure_from_spec("lu:1.5:1"));
  EXPECT_FALSE(inj.configure_from_spec(""));
  EXPECT_FALSE(inj.configure_from_spec("lu:1:1,bogus:1:2"));
  EXPECT_FALSE(inj.configure_from_spec("deadline:1:1,"));
  EXPECT_FALSE(inj.configure_from_spec(",deadline:1:1"));
  EXPECT_DOUBLE_EQ(inj.rate(FaultSite::kLu), 0.0);
  EXPECT_DOUBLE_EQ(inj.rate(FaultSite::kDeadline), 0.0);
  EXPECT_FALSE(fault::armed());
}

// The sites are salted apart: the same (seed, key) makes independent
// decisions at deadline and ckpt, like at every other site pair.
TEST(FaultInjector, NewSitesAreSaltedApart) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.configure_from_spec("deadline:0.5:21,ckpt:0.5:21"));
  std::size_t differing = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    differing += inj.fire(FaultSite::kDeadline, k) != inj.fire(FaultSite::kCkpt, k);
  }
  EXPECT_GT(differing, 500u);
}

TEST(FaultInjector, DecisionsAreAPureFunctionOfSiteSeedKey) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.configure(FaultSite::kLu, 0.5, 42);

  std::vector<bool> first;
  for (std::uint64_t k = 0; k < 2000; ++k) first.push_back(inj.fire(FaultSite::kLu, k));
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t k = 0; k < 2000; ++k) {
      EXPECT_EQ(inj.fire(FaultSite::kLu, k), first[k]) << "key " << k;
    }
  }
  // Rate is honored statistically over the key space.
  const auto fired =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 2000u * 40 / 100);
  EXPECT_LT(fired, 2000u * 60 / 100);
  EXPECT_EQ(inj.fired(FaultSite::kLu), fired * 4);

  // A different seed makes different decisions; sites are salted apart.
  inj.configure(FaultSite::kLu, 0.5, 43);
  std::size_t differing = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    differing += inj.fire(FaultSite::kLu, k) != first[k];
  }
  EXPECT_GT(differing, 500u);
}

TEST(FaultInjector, RateExtremes) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.configure(FaultSite::kIo, 1.0, 9);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(inj.fire(FaultSite::kIo, k));
  inj.configure(FaultSite::kIo, 0.0, 9);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(inj.fire(FaultSite::kIo, k));
  EXPECT_FALSE(fault::armed());  // rate 0 on the only configured site disarms
}

TEST(FaultInjector, DisarmedShouldFireIsFalse) {
  FaultInjector::instance().disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_fire(FaultSite::kPool, 1));
  EXPECT_FALSE(fault::should_fire(FaultSite::kLu, 2));
}

// Pool site: an injected lane loss degrades batches to serial execution.
// By the determinism contract the computed values are bit-identical; only
// the serial_fallbacks counter shows the fault fired.
TEST(FaultInjectorSites, PoolDegradationNeverChangesResults) {
  DisarmGuard guard;
  const auto run = [] {
    std::vector<double> out(512);
    parallel_for(0, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.25 + 1.0 / (1.0 + static_cast<double>(i));
    });
    return out;
  };
  const std::vector<double> clean = run();

  FaultInjector::instance().configure(FaultSite::kPool, 1.0, 5);
  const PoolStats before = ThreadPool::global().stats();
  const std::vector<double> injected = run();
  const PoolStats after = ThreadPool::global().stats();

  EXPECT_EQ(clean, injected);  // bit-identical
  EXPECT_GT(after.serial_fallbacks, before.serial_fallbacks);
  EXPECT_GT(FaultInjector::instance().fired(FaultSite::kPool), 0u);
}

TEST(FaultInjectorSites, ScopedSerialFallbackForcesInlineExecution) {
  ASSERT_FALSE(ThreadPool::serial_fallback_active());
  std::vector<double> serial(256), normal(256);
  {
    ScopedSerialFallback fallback;
    EXPECT_TRUE(ThreadPool::serial_fallback_active());
    parallel_for(0, serial.size(), [&](std::size_t i) {
      serial[i] = std::sqrt(static_cast<double>(i));
    });
  }
  EXPECT_FALSE(ThreadPool::serial_fallback_active());
  parallel_for(0, normal.size(), [&](std::size_t i) {
    normal[i] = std::sqrt(static_cast<double>(i));
  });
  EXPECT_EQ(serial, normal);
}

// Cache site: a forced miss recomputes the entry. Values are pure functions
// of the key, so coupling factors must come out bit-identical - with the
// misses visible in the cache counters.
TEST(FaultInjectorSites, ForcedCacheMissesKeepValuesBitIdentical) {
  DisarmGuard guard;
  const flow::BuckConverter bc = flow::make_buck_converter();
  const place::Layout l = flow::layout_unfavorable(bc);
  const auto pairs = bc.inductor_component_pairs();
  const auto couple_all = [&](const peec::CouplingExtractor& ex) {
    std::vector<double> ks;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      for (std::size_t j = i + 1; j < pairs.size(); ++j) {
        const std::string& ca = pairs[i].second;
        const std::string& cb = pairs[j].second;
        const peec::PlacedModel pa{bc.model_for_component(ca), flow::pose_of(bc, l, ca)};
        const peec::PlacedModel pb{bc.model_for_component(cb), flow::pose_of(bc, l, cb)};
        ks.push_back(ex.coupling_factor(pa, pb));
      }
    }
    return ks;
  };

  const peec::CouplingExtractor clean_ex;
  const std::vector<double> clean = couple_all(clean_ex);
  ASSERT_FALSE(clean.empty());

  FaultInjector::instance().configure(FaultSite::kCache, 1.0, 3);
  const peec::CouplingExtractor faulty_ex;
  // Twice: the second pass would normally be all hits; with the site armed
  // at rate 1 every lookup is a forced miss.
  const std::vector<double> faulty1 = couple_all(faulty_ex);
  const std::vector<double> faulty2 = couple_all(faulty_ex);
  EXPECT_EQ(clean, faulty1);
  EXPECT_EQ(clean, faulty2);
  const peec::ExtractionCacheStats stats = faulty_ex.cache_stats();
  EXPECT_EQ(stats.self_hits, 0u);
  EXPECT_EQ(stats.mutual_hits, 0u);
  EXPECT_GT(stats.mutual_misses, clean.size());  // second pass missed again
}

}  // namespace
}  // namespace emi::core
