#include "src/io/svg.hpp"

#include <gtest/gtest.h>

#include <sstream>

using emi::units::Millimeters;

namespace emi::io {
namespace {

place::Design svg_design() {
  place::Design d;
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {80, 60}))});
  d.add_keepout({"rib", 0, {geom::Rect::from_corners({60, 0}, {80, 20}), 8.0, 1e9}});
  place::Component c;
  c.width_mm = 20;
  c.depth_mm = 10;
  c.axis_deg = 90.0;
  c.name = "CA";
  c.group = "flt";
  d.add_component(c);
  c.name = "CB";
  d.add_component(c);
  c.name = "U1";
  c.group = "";
  d.add_component(c);
  d.add_emd_rule("CA", "CB", Millimeters{30.0});
  return d;
}

place::Layout svg_layout(const place::Design& d, double dist) {
  place::Layout l = place::Layout::unplaced(d);
  l.placements[0] = {{15, 30}, 0.0, 0, true};
  l.placements[1] = {{15 + dist, 30}, 0.0, 0, true};
  l.placements[2] = {{40, 10}, 0.0, 0, true};
  return l;
}

TEST(Svg, RendersComponentsLabelsAndKeepout) {
  const place::Design d = svg_design();
  std::stringstream out;
  write_layout_svg(out, d, svg_layout(d, 45.0));
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find(">CA</text>"), std::string::npos);
  EXPECT_NE(svg.find(">U1</text>"), std::string::npos);
  EXPECT_NE(svg.find("rib"), std::string::npos);
  // Exactly one area polygon.
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
}

TEST(Svg, RuleCirclesGoGreenAndRed) {
  const place::Design d = svg_design();
  std::stringstream ok_out, bad_out;
  write_layout_svg(ok_out, d, svg_layout(d, 45.0));   // 45 >= 30: green
  write_layout_svg(bad_out, d, svg_layout(d, 20.0));  // 20 < 30: red
  EXPECT_NE(ok_out.str().find("#2e8b57"), std::string::npos);
  EXPECT_EQ(ok_out.str().find("#cc2222"), std::string::npos);
  EXPECT_NE(bad_out.str().find("#cc2222"), std::string::npos);
}

TEST(Svg, OptionsDisableFeatures) {
  const place::Design d = svg_design();
  SvgOptions opt;
  opt.draw_rule_circles = false;
  opt.draw_labels = false;
  opt.draw_keepouts = false;
  std::stringstream out;
  write_layout_svg(out, d, svg_layout(d, 20.0), opt);
  const std::string svg = out.str();
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
  EXPECT_EQ(svg.find("#cc2222"), std::string::npos);
}

TEST(Svg, UnplacedAndOtherBoardSkipped) {
  const place::Design d = svg_design();
  place::Layout l = svg_layout(d, 45.0);
  l.placements[2].placed = false;
  std::stringstream out;
  write_layout_svg(out, d, l);
  EXPECT_EQ(out.str().find(">U1<"), std::string::npos);
  // Rendering board 1 (no areas there) still produces a valid document.
  SvgOptions opt;
  opt.board = 1;
  std::stringstream out1;
  write_layout_svg(out1, d, l, opt);
  EXPECT_NE(out1.str().find("</svg>"), std::string::npos);
}

TEST(Svg, PerpendicularPairDrawsNoCircle) {
  const place::Design d = svg_design();
  place::Layout l = svg_layout(d, 20.0);
  l.placements[1].rot_deg = 90.0;  // EMD -> 0, circle of radius 0 skipped
  std::stringstream out;
  write_layout_svg(out, d, l);
  EXPECT_EQ(out.str().find("#cc2222"), std::string::npos);
}

}  // namespace
}  // namespace emi::io
