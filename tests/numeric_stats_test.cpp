#include "src/numeric/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace emi::num {
namespace {

TEST(Stats, MeanAndRms) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{3.0, 4.0, 0.0, 0.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yn{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, ShiftInvariant) {
  const std::vector<double> x{1, 5, 2, 8, 3};
  std::vector<double> y = x;
  for (auto& v : y) v += 100.0;  // dB offset does not change correlation
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
  const std::vector<double> flat{3, 3, 3};
  const std::vector<double> x{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(flat, x), 0.0);  // zero variance
}

TEST(Errors, MeanAndMax) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{1, -2, 3};
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 2.0);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 3.0);
  EXPECT_THROW(mean_abs_error(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Db, VoltsToDbuvKnownPoints) {
  EXPECT_NEAR(volts_to_dbuv(1e-6), 0.0, 1e-12);    // 1 uV = 0 dBuV
  EXPECT_NEAR(volts_to_dbuv(1.0), 120.0, 1e-12);   // 1 V = 120 dBuV
  EXPECT_NEAR(volts_to_dbuv(1e-3), 60.0, 1e-12);   // 1 mV = 60 dBuV
  EXPECT_NEAR(dbuv_to_volts(60.0), 1e-3, 1e-15);
  // Round trip.
  EXPECT_NEAR(volts_to_dbuv(dbuv_to_volts(37.5)), 37.5, 1e-9);
  // Negative voltage uses magnitude; zero clamps to the floor, not -inf.
  EXPECT_NEAR(volts_to_dbuv(-1e-3), 60.0, 1e-12);
  EXPECT_TRUE(std::isfinite(volts_to_dbuv(0.0)));
}

TEST(Db, Db20) {
  EXPECT_NEAR(db20(10.0), 20.0, 1e-12);
  EXPECT_NEAR(db20(0.1), -20.0, 1e-12);
  EXPECT_TRUE(std::isfinite(db20(0.0)));
}

TEST(Interp, ClampsAndInterpolates) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(interp(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 5.0), 30.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 2.0), 20.0);
}

TEST(Grids, LogSpace) {
  const auto g = log_space(1.0, 1000.0, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[2], 100.0, 1e-9);
  EXPECT_NEAR(g[3], 1000.0, 1e-9);
  EXPECT_THROW(log_space(0.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(log_space(10.0, 1.0, 5), std::invalid_argument);
}

TEST(Grids, LinSpace) {
  const auto g = lin_space(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
}

}  // namespace
}  // namespace emi::num
