// Reduced-order coupling model: the rank-2 Sherman-Morrison probe phasor
// against a from-scratch probed solve, the per-pair model sweep (exact at
// model points, complex cubic fill elsewhere, held-out gate), escalation,
// and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "src/ckt/ac.hpp"
#include "src/ckt/circuit.hpp"
#include "src/numeric/stats.hpp"
#include "src/sweep/coupling.hpp"

namespace emi::sweep {
namespace {

// Two-stage input filter: four inductors (two chokes, two capacitor ESLs),
// so six candidate pairs with genuinely different branch interactions.
ckt::Circuit testbed(std::string* meas, std::vector<std::string>* names) {
  ckt::Circuit c;
  c.add_vsource("VN", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RS", "in", "n1", 2.0);
  c.add_inductor("LF1", "n1", "n2", 4.7e-6);
  c.add_capacitor("CX1", "n2", "x1", 220e-9);
  c.add_inductor("LX1", "x1", "e1", 15e-9);
  c.add_resistor("RX1", "e1", "0", 0.5);
  c.add_inductor("LF2", "n2", "n3", 2.2e-6);
  c.add_capacitor("CX2", "n3", "x2", 100e-9);
  c.add_inductor("LX2", "x2", "e2", 25e-9);
  c.add_resistor("RX2", "e2", "0", 0.8);
  c.add_resistor("RLOAD", "n3", "0", 50.0);
  *meas = "n3";
  *names = {"LF1", "LX1", "LF2", "LX2"};
  return c;
}

std::vector<double> probed_dense_levels(ckt::Circuit c, const std::string& meas,
                                        const std::string& a, const std::string& b,
                                        double k, const std::vector<double>& freqs,
                                        const std::vector<double>& env) {
  c.set_coupling(a, b, k);
  ckt::AcOptions ac;
  ac.source_scale = env;
  const ckt::AcSolution sol = ckt::ac_solve(c, freqs, ac);
  std::vector<double> level(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    level[i] = num::volts_to_dbuv(std::abs(sol.voltage(meas, i)));
  }
  return level;
}

TEST(CouplingProbeModel, ShermanMorrisonMatchesFullProbedSolve) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 24);
  const std::vector<double> env(freqs.size(), 1.0);

  ckt::AcOptions ac;
  ac.source_scale = env;
  const ckt::CouplingProbeModel model =
      ckt::ac_coupling_probe_model(c, meas, names, freqs, ac);
  ASSERT_EQ(model.freqs_hz.size(), freqs.size());

  const auto lmat = c.inductance_matrix();
  const double probe_k = 0.05;
  for (std::size_t p = 0; p < names.size(); ++p) {
    for (std::size_t q = p + 1; q < names.size(); ++q) {
      const std::size_t cp = c.inductor_index(names[p]);
      const std::size_t cq = c.inductor_index(names[q]);
      const double dm =
          probe_k * std::sqrt(lmat[cp][cp] * lmat[cq][cq]) - lmat[cp][cq];
      ckt::Circuit probe = c;
      probe.set_coupling(names[p], names[q], probe_k);
      const ckt::AcSolution ref = ckt::ac_solve(probe, freqs, ac);
      for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        const ckt::Complex want = ref.voltage(meas, fi);
        const ckt::Complex got = coupling_probe_phasor(model, fi, p, q, dm);
        EXPECT_NEAR(got.real(), want.real(), 1e-9 * std::abs(want) + 1e-18)
            << names[p] << "/" << names[q] << " fi=" << fi;
        EXPECT_NEAR(got.imag(), want.imag(), 1e-9 * std::abs(want) + 1e-18)
            << names[p] << "/" << names[q] << " fi=" << fi;
      }
    }
  }
}

TEST(CouplingProbeModel, ZeroDeltaReturnsBaselineVerbatim) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::vector<double> freqs = num::log_space(150e3, 108e6, 8);
  ckt::AcOptions ac;
  ac.source_scale = std::vector<double>(freqs.size(), 1.0);
  const ckt::CouplingProbeModel model =
      ckt::ac_coupling_probe_model(c, meas, names, freqs, ac);
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    EXPECT_EQ(coupling_probe_phasor(model, fi, 0, 1, 0.0), model.v_meas[fi]);
  }
}

TEST(CouplingProbeModel, RejectsBadInputs) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::vector<double> freqs{1e6, 2e6};
  EXPECT_THROW(ckt::ac_coupling_probe_model(c, "nope", names, freqs, {}),
               std::invalid_argument);
  EXPECT_THROW(ckt::ac_coupling_probe_model(c, meas, {"LF1", "LGHOST"}, freqs, {}),
               std::invalid_argument);
  ckt::AcOptions bad;
  bad.source_scale = {1.0};  // wrong length for a 2-point grid
  EXPECT_THROW(ckt::ac_coupling_probe_model(c, meas, names, freqs, bad),
               std::invalid_argument);
}

TEST(CouplingModelSweep, ExactAtModelPointsFillWithinGate) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::size_t n = 240;
  const std::vector<double> freqs = num::log_space(150e3, 108e6, n);
  const std::vector<double> env(freqs.size(), 1.0);

  // Model grid: every 2nd dense index plus the last - a stand-in for the
  // refined grid the sensitivity ranking would pass (refinement clusters
  // points near structure; an even stride needs to be denser to match).
  std::vector<std::size_t> solved_idx;
  for (std::size_t i = 0; i < n; i += 2) solved_idx.push_back(i);
  if (solved_idx.back() != n - 1) solved_idx.push_back(n - 1);
  std::vector<double> model_f(solved_idx.size()), model_env(solved_idx.size());
  for (std::size_t k = 0; k < solved_idx.size(); ++k) {
    model_f[k] = freqs[solved_idx[k]];
    model_env[k] = env[solved_idx[k]];
  }
  ckt::AcOptions mac;
  mac.source_scale = model_env;
  const ckt::CouplingProbeModel model =
      ckt::ac_coupling_probe_model(c, meas, names, model_f, mac);

  const auto lmat = c.inductance_matrix();
  const double probe_k = 0.05;
  const std::size_t p = 0, q = 2;  // LF1 / LF2
  const std::size_t cp = c.inductor_index(names[p]);
  const std::size_t cq = c.inductor_index(names[q]);
  const double dm = probe_k * std::sqrt(lmat[cp][cp] * lmat[cq][cq]) - lmat[cp][cq];

  SweepAccel accel;
  accel.adaptive = accel.surrogate = true;
  SweepStats stats;
  bool escalated = false;
  const std::vector<double> level = coupling_model_pair_sweep(
      model, solved_idx, freqs, env, dm, p, q, accel, &stats, [&]() {
        escalated = true;
        return std::vector<double>(n, 0.0);
      });
  ASSERT_FALSE(escalated);
  ASSERT_EQ(level.size(), n);
  EXPECT_EQ(stats.escalations, 0u);
  EXPECT_EQ(stats.surrogate_evals, n - solved_idx.size());
  EXPECT_LE(stats.max_residual_db, accel.gate_db);

  const std::vector<double> ref =
      probed_dense_levels(c, meas, names[p], names[q], probe_k, freqs, env);
  for (std::size_t k = 0; k < solved_idx.size(); ++k) {
    EXPECT_NEAR(level[solved_idx[k]], ref[solved_idx[k]], 1e-6) << solved_idx[k];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::abs(level[i] - ref[i]), 1.0) << i;
  }

  // Pure function of the model: a second evaluation is bitwise identical.
  SweepStats stats2;
  const std::vector<double> again = coupling_model_pair_sweep(
      model, solved_idx, freqs, env, dm, p, q, accel, &stats2,
      [&]() { return std::vector<double>(n, 0.0); });
  EXPECT_EQ(level, again);
}

TEST(CouplingModelSweep, ZeroGateEscalates) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::size_t n = 64;
  const std::vector<double> freqs = num::log_space(150e3, 108e6, n);
  const std::vector<double> env(freqs.size(), 1.0);
  std::vector<std::size_t> solved_idx;
  for (std::size_t i = 0; i < n; i += 4) solved_idx.push_back(i);
  if (solved_idx.back() != n - 1) solved_idx.push_back(n - 1);
  std::vector<double> model_f(solved_idx.size()), model_env(solved_idx.size());
  for (std::size_t k = 0; k < solved_idx.size(); ++k) {
    model_f[k] = freqs[solved_idx[k]];
    model_env[k] = env[solved_idx[k]];
  }
  ckt::AcOptions mac;
  mac.source_scale = model_env;
  const ckt::CouplingProbeModel model =
      ckt::ac_coupling_probe_model(c, meas, names, model_f, mac);

  SweepAccel accel;
  accel.adaptive = accel.surrogate = true;
  accel.gate_db = 0.0;  // any nonzero held-out residual escalates
  SweepStats stats;
  const std::vector<double> sentinel(n, -123.0);
  const std::vector<double> level = coupling_model_pair_sweep(
      model, solved_idx, freqs, env, 1e-8, 0, 2, accel, &stats,
      [&]() { return sentinel; });
  EXPECT_EQ(level, sentinel);
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(stats.surrogate_evals, 0u);
}

TEST(CouplingModelSweep, RejectsMismatchedGrids) {
  std::string meas;
  std::vector<std::string> names;
  const ckt::Circuit c = testbed(&meas, &names);
  const std::vector<double> freqs = num::log_space(1e6, 1e7, 16);
  const std::vector<double> env(freqs.size(), 1.0);
  ckt::AcOptions mac;
  mac.source_scale = {1.0, 1.0};
  const ckt::CouplingProbeModel model =
      ckt::ac_coupling_probe_model(c, meas, names, {freqs[0], freqs[15]}, mac);
  SweepStats stats;
  const auto dense = []() { return std::vector<double>(16, 0.0); };
  // Model grid that does not span the dense grid's ends.
  EXPECT_THROW(coupling_model_pair_sweep(model, {0, 7}, freqs, env, 1e-9, 0, 1, {},
                                         &stats, dense),
               std::invalid_argument);
  EXPECT_THROW(coupling_model_pair_sweep(model, {0}, freqs, env, 1e-9, 0, 1, {},
                                         &stats, dense),
               std::invalid_argument);
}

}  // namespace
}  // namespace emi::sweep
