// Battery for hierarchical far-field clustering (cluster_tree.hpp): tree
// invariants, equivalence of single-segment clusters with the per-pair
// far-field formula, bitwise equality with the exact kernel whenever
// clustering is off (or admits nothing), determinism across schedules, and
// the 500-seed fuzz sweep asserting the documented theta error bound
// against the order-8 exact kernel.
#include "src/peec/cluster_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/thread_pool.hpp"
#include "src/numeric/rng.hpp"
#include "src/peec/component_model.hpp"
#include "src/peec/coupling.hpp"
#include "src/peec/partial_inductance.hpp"

namespace emi::peec {
namespace {

constexpr QuadratureOptions kRefQuad{8, 2};

KernelOptions clustered(double theta, std::size_t leaf = 4) {
  KernelOptions k;
  k.cluster = true;
  k.cluster_theta = theta;
  k.cluster_leaf_segments = leaf;
  return k;
}

// Random open chain of `n` segments taking 1..4 mm steps around `center`:
// compact enough that well-separated chain pairs admit cluster interactions
// at moderate theta.
SegmentPath random_chain(num::Rng& rng, const Vec3& center, std::size_t n) {
  SegmentPath p;
  Vec3 at{center.x + rng.uniform(-2.0, 2.0), center.y + rng.uniform(-2.0, 2.0),
          center.z + rng.uniform(-1.0, 1.0)};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 step{rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0),
                    rng.uniform(-2.0, 2.0)};
    const Vec3 to{at.x + step.x, at.y + step.y, at.z + step.z};
    p.segments.push_back(Segment{at, to, 0.2, rng.uniform(0.5, 1.5)});
    at = to;
  }
  return p;
}

TEST(ClusterTree, BuildInvariants) {
  const ComponentFieldModel coil = bobbin_coil("A");
  const SegmentPath path = coil.path_at({});
  const SampledPath sp = sample_path(path, QuadratureOptions{4, 2});
  const std::size_t n = sp.segment_count();
  const std::size_t leaf_cap = 4;
  const ClusterTree tree = ClusterTree::build(sp, leaf_cap);
  ASSERT_FALSE(tree.empty());
  EXPECT_EQ(tree.root().begin, 0u);
  EXPECT_EQ(tree.root().end, n);

  // order() is a permutation of the segment indices.
  std::vector<char> seen(n, 0);
  for (const std::size_t i : tree.order()) {
    ASSERT_LT(i, n);
    EXPECT_EQ(seen[i], 0);
    seen[i] = 1;
  }

  for (const ClusterNode& node : tree.nodes()) {
    ASSERT_LT(node.begin, node.end);
    if (node.leaf()) {
      EXPECT_LE(node.count(), leaf_cap);
      EXPECT_LT(node.right, 0);
    } else {
      const ClusterNode& l = tree.nodes()[static_cast<std::size_t>(node.left)];
      const ClusterNode& r = tree.nodes()[static_cast<std::size_t>(node.right)];
      EXPECT_EQ(l.begin, node.begin);
      EXPECT_EQ(l.end, r.begin);
      EXPECT_EQ(r.end, node.end);
      // Moments and error mass aggregate over the same members, so parent
      // totals match child totals up to summation order.
      EXPECT_NEAR(node.abs_moment, l.abs_moment + r.abs_moment,
                  1e-9 * node.abs_moment);
      EXPECT_NEAR(node.mx, l.mx + r.mx, 1e-9 * (1.0 + std::fabs(node.mx)));
    }
    // The radius covers every member endpoint.
    for (std::size_t k = node.begin; k < node.end; ++k) {
      const std::size_t i = tree.order()[k];
      const double ex = sp.ax[i] + sp.dx[i] * sp.len[i];
      const double ey = sp.ay[i] + sp.dy[i] * sp.len[i];
      const double ez = sp.az[i] + sp.dz[i] * sp.len[i];
      const double da = std::sqrt((sp.ax[i] - node.cx) * (sp.ax[i] - node.cx) +
                                  (sp.ay[i] - node.cy) * (sp.ay[i] - node.cy) +
                                  (sp.az[i] - node.cz) * (sp.az[i] - node.cz));
      const double db = std::sqrt((ex - node.cx) * (ex - node.cx) +
                                  (ey - node.cy) * (ey - node.cy) +
                                  (ez - node.cz) * (ez - node.cz));
      EXPECT_LE(da, node.radius * (1.0 + 1e-12));
      EXPECT_LE(db, node.radius * (1.0 + 1e-12));
    }
  }
}

TEST(ClusterTree, BuildIsDeterministic) {
  const ComponentFieldModel coil = bobbin_coil("A");
  const SampledPath sp = sample_path(coil.path_at({}), QuadratureOptions{4, 2});
  const ClusterTree t1 = ClusterTree::build(sp, 4);
  const ClusterTree t2 = ClusterTree::build(sp, 4);
  ASSERT_EQ(t1.nodes().size(), t2.nodes().size());
  EXPECT_EQ(t1.order(), t2.order());
  for (std::size_t i = 0; i < t1.nodes().size(); ++i) {
    EXPECT_EQ(t1.nodes()[i].cx, t2.nodes()[i].cx);
    EXPECT_EQ(t1.nodes()[i].radius, t2.nodes()[i].radius);
    EXPECT_EQ(t1.nodes()[i].left, t2.nodes()[i].left);
  }
}

TEST(ClusterTree, SingleSegmentClustersReduceToFarFieldFormula) {
  // Two single-segment paths, leaf size 1: each tree is one node whose
  // moment is w*l*d and whose center is the midpoint, so an admitted pair
  // must reproduce the per-pair far-field dipole formula (weighted).
  const Segment s1{{0, 0, 0}, {10, 0, 0}, 0.2, 1.1};
  const Segment s2{{80, 3, 1}, {80, 15, 1}, 0.3, 0.8};
  SegmentPath p1, p2;
  p1.segments = {s1};
  p2.segments = {s2};
  const ClusteredMutual got =
      path_mutual_clustered_stats(p1, p2, kRefQuad, clustered(3.0, 1));
  ASSERT_EQ(got.cluster_pairs, 1u);
  EXPECT_EQ(got.cluster_skipped, 1u);

  const Vec3 m1 = s1.midpoint(), m2 = s2.midpoint();
  const Vec3 r{m2.x - m1.x, m2.y - m1.y, m2.z - m1.z};
  const double R = std::sqrt(r.x * r.x + r.y * r.y + r.z * r.z);
  const Vec3 d1 = s1.direction(), d2 = s2.direction();
  const double dot = d1.x * d2.x + d1.y * d2.y + d1.z * d2.z;
  const double expect = s1.weight * s2.weight * kMu0 /
                        (4.0 * geom::kPi) * dot * s1.length() * s2.length() /
                        R * kMmToM;
  EXPECT_NEAR(got.value, expect, 1e-12 * std::fabs(expect) + 1e-30);
  // And the realized error against order-8 exact stays within the bound.
  const double ref = path_mutual(p1, p2, kRefQuad);
  EXPECT_LE(std::fabs(got.value - ref), got.error_bound);
}

TEST(ClusterTree, DisabledIsPathMutualBitwise) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = x_capacitor("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{35.0, -6.0, 0.0}, 40.0});
  for (const QuadratureOptions q : {QuadratureOptions{4, 2}, kRefQuad}) {
    EXPECT_EQ(path_mutual_clustered(pa, pb, q, KernelOptions{}),
              path_mutual(pa, pb, q));
  }
}

TEST(ClusterTree, HugeThetaAdmitsNothingAndMatchesExactBitwise) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{40.0, 8.0, 0.0}, 15.0});
  const QuadratureOptions q{4, 2};
  const ClusteredMutual got =
      path_mutual_clustered_stats(pa, pb, q, clustered(1e9));
  EXPECT_EQ(got.cluster_pairs, 0u);
  EXPECT_EQ(got.cluster_skipped, 0u);
  EXPECT_EQ(got.error_bound, 0.0);
  EXPECT_EQ(got.value, path_mutual(pa, pb, q));
}

TEST(ClusterTree, ThetaBelowTwoThrows) {
  SegmentPath p1, p2;
  p1.segments = {Segment{{0, 0, 0}, {5, 0, 0}}};
  p2.segments = {Segment{{30, 0, 0}, {35, 0, 0}}};
  EXPECT_THROW(path_mutual_clustered(p1, p2, {}, clustered(1.5)),
               std::invalid_argument);
}

TEST(ClusterTree, ClusteredResultIsScheduleIndependent) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{60.0, 10.0, 0.0}, 30.0});
  const KernelOptions k = clustered(3.0);
  const QuadratureOptions q{4, 2};
  const ClusteredMutual pooled = path_mutual_clustered_stats(pa, pb, q, k);
  ASSERT_GT(pooled.cluster_pairs, 0u);
  ClusteredMutual serial;
  {
    core::ScopedSerialFallback fallback;
    serial = path_mutual_clustered_stats(pa, pb, q, k);
  }
  EXPECT_EQ(pooled.value, serial.value);
  EXPECT_EQ(pooled.error_bound, serial.error_bound);
  EXPECT_EQ(pooled.cluster_pairs, serial.cluster_pairs);
}

TEST(ClusterTree, CountersTallyClusterTraffic) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{70.0, 0.0, 0.0}, 0.0});
  const KernelStats before = kernel_stats();
  const ClusteredMutual got =
      path_mutual_clustered_stats(pa, pb, QuadratureOptions{4, 2},
                                  clustered(3.0));
  const KernelStats after = kernel_stats();
  ASSERT_GT(got.cluster_pairs, 0u);
  EXPECT_EQ(after.cluster_pairs - before.cluster_pairs, got.cluster_pairs);
  EXPECT_EQ(after.cluster_skipped - before.cluster_skipped,
            got.cluster_skipped);
  // Every segment pair was either covered by a cluster interaction or
  // handed to the exact remainder. The remainder - like the exact row
  // kernel - skips orthogonal pairs without tallying them, so the two
  // tallies bracket between the baseline exact-pair count and the full
  // double sum rather than hitting it exactly.
  const KernelStats base_before = kernel_stats();
  path_mutual(pa, pb, QuadratureOptions{4, 2});
  const KernelStats base_after = kernel_stats();
  const std::uint64_t baseline_exact =
      base_after.exact_pairs - base_before.exact_pairs;
  const std::size_t n1 = pa.segments.size(), n2 = pb.segments.size();
  const std::uint64_t tallied = (after.cluster_skipped -
                                 before.cluster_skipped) +
                                (after.exact_pairs - before.exact_pairs);
  EXPECT_GE(tallied, baseline_exact);
  EXPECT_LE(tallied, static_cast<std::uint64_t>(n1) * n2);
}

// The satellite fuzz battery: 500 randomized chain-pair layouts, clustered
// value vs order-8 exact, |error| within the accumulated documented bound;
// and with clustering off the same geometry returns the exact bits.
TEST(ClusterTree, FuzzErrorBoundAcross500Seeds) {
  std::uint64_t admitted_layouts = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    num::Rng rng(seed);
    const std::size_t n1 = 2 + rng.below(5);
    const std::size_t n2 = 2 + rng.below(5);
    const double dist = rng.uniform(25.0, 120.0);
    const double az = rng.uniform(0.0, 2.0 * geom::kPi);
    const Vec3 cb{dist * std::cos(az), dist * std::sin(az),
                  rng.uniform(-5.0, 5.0)};
    const SegmentPath p1 = random_chain(rng, {0, 0, 0}, n1);
    const SegmentPath p2 = random_chain(rng, cb, n2);
    const double theta = rng.uniform(2.0, 8.0);

    const double ref = path_mutual(p1, p2, kRefQuad);
    const ClusteredMutual got =
        path_mutual_clustered_stats(p1, p2, kRefQuad, clustered(theta, 2));
    if (got.cluster_pairs > 0) {
      ++admitted_layouts;
      EXPECT_LE(std::fabs(got.value - ref), got.error_bound)
          << "seed=" << seed << " theta=" << theta;
    } else {
      EXPECT_EQ(got.value, ref) << "seed=" << seed;
      EXPECT_EQ(got.error_bound, 0.0);
    }
    EXPECT_EQ(path_mutual_clustered(p1, p2, kRefQuad, KernelOptions{}), ref)
        << "seed=" << seed;
  }
  // The sweep must actually exercise admission, not just the fallback.
  EXPECT_GT(admitted_layouts, 100u);
}

TEST(ClusterTree, ExtractorKeysDoNotAliasAcrossClusterConfigs) {
  // Three extractors sharing one cache: exact, clustered, and clustered
  // with a different theta. Each must be served its own value - a key alias
  // would hand the later extractors the first one's bits.
  const auto cache = std::make_shared<ExtractionCache>();
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const PlacedModel a{&ma, Pose{{0, 0, 0}, 0.0}};
  const PlacedModel b{&mb, Pose{{55.0, 5.0, 0.0}, 20.0}};
  const QuadratureOptions q{4, 2};

  const CouplingExtractor exact(q, KernelOptions{}, cache);
  const CouplingExtractor clus3(q, clustered(3.0), cache);
  const CouplingExtractor clus6(q, clustered(6.0), cache);
  const double m_exact = exact.mutual(a, b).raw();
  const double m_clus3 = clus3.mutual(a, b).raw();
  const double m_clus6 = clus6.mutual(a, b).raw();

  const CouplingExtractor fresh3(q, clustered(3.0));
  const CouplingExtractor fresh6(q, clustered(6.0));
  EXPECT_EQ(m_clus3, fresh3.mutual(a, b).raw());
  EXPECT_EQ(m_clus6, fresh6.mutual(a, b).raw());
  const CouplingExtractor fresh_exact(q);
  EXPECT_EQ(m_exact, fresh_exact.mutual(a, b).raw());
}

TEST(ClusterTree, MatrixClusteredWithDefaultOptionsIsMatrixBitwise) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = x_capacitor("B");
  const ComponentFieldModel mc = bobbin_coil("C");
  const std::vector<PlacedModel> models{
      {&ma, Pose{{0, 0, 0}, 0.0}},
      {&mb, Pose{{40.0, 0, 0}, 90.0}},
      {&mc, Pose{{0, 45.0, 0}, 10.0}},
  };
  const CouplingExtractor ex;
  const std::vector<units::Henry> m1 = ex.mutual_matrix(models);
  const std::vector<units::Henry> m2 = ex.mutual_matrix_clustered(models);
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_EQ(m1[i].raw(), m2[i].raw()) << "entry " << i;
  }
}

}  // namespace
}  // namespace emi::peec
