// Crash-safe file publication: AtomicFileWriter buffers, then publishes via
// tmp + fsync + rename, so readers see either the old file or the complete
// new one - never a torn write. Failures surface as kIoError Status values.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/profile.hpp"
#include "src/io/atomic_writer.hpp"
#include "src/io/reports.hpp"

namespace emi::io {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(AtomicFileWriter, WritesContentAndCleansUpTmp) {
  const std::string path = temp_path("atomic_basic.txt");
  AtomicFileWriter w(path);
  w.stream() << "hello\natomic\n";
  const core::Status st = w.commit();
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(slurp(path), "hello\natomic\n");
  // The tmp file must not survive a successful commit.
  std::ifstream tmp(w.tmp_path());
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, OverwriteReplacesWholeFile) {
  const std::string path = temp_path("atomic_overwrite.txt");
  ASSERT_TRUE(AtomicFileWriter(path).commit_content("old content, long line\n").ok());
  ASSERT_TRUE(AtomicFileWriter(path).commit_content("new\n").ok());
  EXPECT_EQ(slurp(path), "new\n");  // no remnants of the longer old file
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, DoubleCommitIsAFailedPrecondition) {
  const std::string path = temp_path("atomic_double.txt");
  AtomicFileWriter w(path);
  w.stream() << "once\n";
  ASSERT_TRUE(w.commit().ok());
  const core::Status st = w.commit();
  EXPECT_EQ(st.code(), core::ErrorCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, UnwritableDirectoryIsAnIoError) {
  const core::Status st =
      AtomicFileWriter("/definitely/missing/dir/file.txt").commit_content("x");
  EXPECT_EQ(st.code(), core::ErrorCode::kIoError);
  EXPECT_NE(st.to_string().find("cannot"), std::string::npos);
}

TEST(AtomicFileWriter, FailedBufferedStreamRefusesToCommit) {
  const std::string path = temp_path("atomic_badstream.txt");
  AtomicFileWriter w(path);
  w.stream() << "partial";
  w.stream().setstate(std::ios::badbit);
  const core::Status st = w.commit();
  EXPECT_EQ(st.code(), core::ErrorCode::kIoError);
  // Nothing was published.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST(AtomicFileWriter, WriteFileAtomicHelper) {
  const std::string path = temp_path("atomic_helper.txt");
  const core::Status st =
      write_file_atomic(path, [](std::ostream& o) { o << "via helper\n"; });
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(slurp(path), "via helper\n");
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, EmptyContentIsFine) {
  const std::string path = temp_path("atomic_empty.txt");
  ASSERT_TRUE(AtomicFileWriter(path).commit_content("").ok());
  EXPECT_EQ(slurp(path), "");
  std::remove(path.c_str());
}

// The Status-returning report writers must publish byte-identical content to
// their ostream counterparts.
TEST(ReportFileWriters, MatchStreamVariantsByteForByte) {
  core::Profile profile;
  profile.add_seconds("flow.total_seconds", 1.25);
  profile.add_count("pool.batches", 3);

  std::ostringstream direct;
  write_profile(direct, profile);

  const std::string path = temp_path("atomic_profile.txt");
  const core::Status st = write_profile_file(path, profile);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(slurp(path), direct.str());
  std::remove(path.c_str());
}

TEST(ReportFileWriters, FailuresComeBackAsStatusNotSilence) {
  core::Profile profile;
  const core::Status st =
      write_profile_file("/definitely/missing/dir/profile.txt", profile);
  EXPECT_EQ(st.code(), core::ErrorCode::kIoError);
}

}  // namespace
}  // namespace emi::io
