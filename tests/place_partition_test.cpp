#include "src/place/partition.hpp"

#include <gtest/gtest.h>

namespace emi::place {
namespace {

Design clustered_design() {
  // Two natural clusters of 4, connected internally by many nets and to
  // each other by a single bridge net - the min cut is 1.
  Design d;
  d.set_board_count(2);
  d.add_area({"b0", 0, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {50, 50}))});
  d.add_area({"b1", 1, geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {50, 50}))});
  for (int i = 0; i < 8; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = 10;
    c.depth_mm = 10;
    d.add_component(c);
  }
  // Cluster 1: C0..C3, cluster 2: C4..C7.
  d.add_net({"n1", {{"C0", ""}, {"C1", ""}}});
  d.add_net({"n2", {{"C1", ""}, {"C2", ""}}});
  d.add_net({"n3", {{"C2", ""}, {"C3", ""}}});
  d.add_net({"n4", {{"C0", ""}, {"C3", ""}}});
  d.add_net({"n5", {{"C4", ""}, {"C5", ""}}});
  d.add_net({"n6", {{"C5", ""}, {"C6", ""}}});
  d.add_net({"n7", {{"C6", ""}, {"C7", ""}}});
  d.add_net({"n8", {{"C4", ""}, {"C7", ""}}});
  d.add_net({"bridge", {{"C3", ""}, {"C4", ""}}});
  return d;
}

TEST(Partition, FindsTheNaturalCut) {
  Design d = clustered_design();
  const Partitioner part(d);
  const PartitionResult r = part.bipartition();
  EXPECT_EQ(r.cut_nets, 1u);
  // The clusters land on different boards, whichever way round.
  EXPECT_EQ(r.board[0], r.board[1]);
  EXPECT_EQ(r.board[1], r.board[2]);
  EXPECT_EQ(r.board[2], r.board[3]);
  EXPECT_EQ(r.board[4], r.board[5]);
  EXPECT_EQ(r.board[5], r.board[6]);
  EXPECT_EQ(r.board[6], r.board[7]);
  EXPECT_NE(r.board[0], r.board[4]);
  EXPECT_NEAR(r.area_share_0, 0.5, 0.01);
}

TEST(Partition, PinnedComponentsStay) {
  Design d = clustered_design();
  d.components()[0].board = 1;  // pin C0 to board 1
  const Partitioner part(d);
  const PartitionResult r = part.bipartition();
  EXPECT_EQ(r.board[0], 1);
}

TEST(Partition, GroupsMoveTogether) {
  Design d = clustered_design();
  for (int i : {0, 4}) d.components()[static_cast<std::size_t>(i)].group = "same";
  const Partitioner part(d);
  const PartitionResult r = part.bipartition();
  EXPECT_EQ(r.board[0], r.board[4]);  // grouped cells are one move unit
}

TEST(Partition, BalanceToleranceRespected) {
  Design d = clustered_design();
  PartitionOptions opt;
  opt.balance_tolerance = 0.1;
  const PartitionResult r = Partitioner(d).bipartition(opt);
  EXPECT_GE(r.area_share_0, 0.4 - 1e-9);
  EXPECT_LE(r.area_share_0, 0.6 + 1e-9);
}

TEST(Partition, CutCountMatchesManual) {
  Design d = clustered_design();
  const Partitioner part(d);
  std::vector<int> all_zero(8, 0);
  EXPECT_EQ(part.cut_count(all_zero), 0u);
  std::vector<int> split{0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(part.cut_count(split), 1u);  // only the bridge
  std::vector<int> alternate{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(part.cut_count(alternate), 9u);
}

TEST(Partition, ConflictingGroupPinsThrow) {
  Design d = clustered_design();
  d.components()[0].group = "g";
  d.components()[1].group = "g";
  d.components()[0].board = 0;
  d.components()[1].board = 1;
  EXPECT_THROW(Partitioner(d).bipartition(), std::invalid_argument);
}

TEST(Partition, EmptyDesignThrows) {
  Design d;
  EXPECT_THROW(Partitioner(d).bipartition(), std::invalid_argument);
}

}  // namespace
}  // namespace emi::place
