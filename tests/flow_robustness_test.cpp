// End-to-end robustness of the design flow under deterministic fault
// injection: injected numeric failures degrade the pipeline to a partial
// FlowResult with a reproducible diagnostics list - never a crash, never a
// different answer on the second run or under a different thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/core/thread_pool.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/design_flow.hpp"

namespace emi::flow {
namespace {

struct Guards {
  ~Guards() {
    core::FaultInjector::instance().disarm();
    core::ThreadPool::set_global_thread_count(core::ThreadPool::default_thread_count());
  }
};

FlowResult run_once() {
  FlowOptions opt;
  opt.sweep.n_points = 30;
  BuckConverter bc = make_buck_converter();
  return run_design_flow(bc, layout_unfavorable(bc), opt);
}

std::vector<std::string> diag_strings(const FlowResult& r) {
  std::vector<std::string> out;
  for (const StageDiagnostic& d : r.diagnostics) {
    out.push_back(d.stage + "|" + d.status.to_string() + "|" +
                  std::to_string(d.attempts) + "|" + (d.recovered ? "r" : "f"));
  }
  return out;
}

TEST(FlowRobustness, CleanRunHasNoDiagnostics) {
  Guards guards;
  core::FaultInjector::instance().disarm();
  const FlowResult res = run_once();
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.diagnostics.empty());
  EXPECT_FALSE(res.initial_prediction.level_dbuv.empty());
  EXPECT_GT(res.peak_improvement_db, 0.0);
}

// The acceptance scenario: EMI_FAULT_INJECT=lu:0.5:42 equivalent. Injected
// singular pivots knock out the LU-dependent stages; the flow must come
// back partial (not throw), list the injected faults, still run the
// geometric stages - and produce the exact same diagnostics again on a
// second run and for any lane count.
TEST(FlowRobustness, InjectedLuFaultsYieldReproduciblePartialResult) {
  Guards guards;
  core::FaultInjector& inj = core::FaultInjector::instance();
  ASSERT_TRUE(inj.configure_from_spec("lu:0.5:42"));

  const FlowResult first = run_once();
  EXPECT_FALSE(first.diagnostics.empty());
  bool saw_injected = false;
  for (const StageDiagnostic& d : first.diagnostics) {
    if (d.status.code() == core::ErrorCode::kInjectedFault) saw_injected = true;
    EXPECT_GE(d.attempts, 1);
  }
  EXPECT_TRUE(saw_injected);
  // Placement is geometric - it must have survived the numeric faults.
  EXPECT_GT(first.place_stats.placed, 0u);

  ASSERT_TRUE(inj.configure_from_spec("lu:0.5:42"));  // reset fired counters
  const FlowResult second = run_once();
  EXPECT_EQ(diag_strings(first), diag_strings(second));
  EXPECT_EQ(first.complete, second.complete);
  EXPECT_EQ(first.simulated_pairs, second.simulated_pairs);

  for (std::size_t lanes : {1u, 4u}) {
    core::ThreadPool::set_global_thread_count(lanes);
    ASSERT_TRUE(inj.configure_from_spec("lu:0.5:42"));
    const FlowResult again = run_once();
    EXPECT_EQ(diag_strings(first), diag_strings(again)) << lanes << " lanes";
  }
}

// Rate 1: every factorization fails, retries cannot help, and the flow
// degrades as designed - prediction stages report failure, complete=false,
// while the geometric placement and the DRC still deliver.
TEST(FlowRobustness, TotalLuOutageStillPlacesTheBoard) {
  Guards guards;
  core::FaultInjector::instance().configure(core::FaultSite::kLu, 1.0, 7);

  const FlowResult res = run_once();
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.diagnostics.empty());
  bool prediction_failed = false;
  for (const StageDiagnostic& d : res.diagnostics) {
    if (d.stage == "flow.initial_prediction") {
      prediction_failed = true;
      EXPECT_FALSE(d.recovered);
      EXPECT_EQ(d.status.code(), core::ErrorCode::kInjectedFault);
    }
  }
  EXPECT_TRUE(prediction_failed);
  // Sensitivity fell back to simulating every pair (7 choose 2).
  EXPECT_EQ(res.simulated_pairs.size(), 21u);
  EXPECT_GT(res.place_stats.placed, 0u);
  EXPECT_EQ(res.place_stats.failed, 0u);
  EXPECT_EQ(res.peak_improvement_db, 0.0);  // no spectra to compare
}

// Pool-site injection degrades batches to serial lanes; the determinism
// contract makes that invisible in the results - the whole flow must be
// bit-identical to the clean run.
TEST(FlowRobustness, PoolFaultsAreInvisibleInResults) {
  Guards guards;
  core::FaultInjector::instance().disarm();
  const FlowResult clean = run_once();

  core::FaultInjector::instance().configure(core::FaultSite::kPool, 1.0, 3);
  const FlowResult degraded = run_once();

  EXPECT_TRUE(degraded.complete);
  EXPECT_TRUE(degraded.diagnostics.empty());
  EXPECT_EQ(clean.initial_prediction.level_dbuv, degraded.initial_prediction.level_dbuv);
  EXPECT_EQ(clean.improved_prediction.level_dbuv, degraded.improved_prediction.level_dbuv);
  EXPECT_EQ(clean.peak_improvement_db, degraded.peak_improvement_db);
  EXPECT_GT(degraded.profile.count("pool.serial_fallbacks"), 0u);
}

}  // namespace
}  // namespace emi::flow
