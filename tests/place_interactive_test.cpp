#include "src/place/interactive.hpp"

#include <gtest/gtest.h>

namespace emi::place {
namespace {

class InteractiveTest : public ::testing::Test {
 protected:
  InteractiveTest() {
    d_.set_clearance(Millimeters{1.0});
    d_.add_area({"board", 0,
                 geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {100, 60}))});
    Component c;
    c.width_mm = 10;
    c.depth_mm = 10;
    c.height_mm = 5;
    c.axis_deg = 90.0;
    c.name = "A";
    d_.add_component(c);
    c.name = "B";
    d_.add_component(c);
    d_.add_emd_rule("A", "B", Millimeters{30.0});
    layout_ = Layout::unplaced(d_);
    layout_.placements[0] = {{20, 30}, 0.0, 0, true};
    layout_.placements[1] = {{70, 30}, 0.0, 0, true};
  }

  Design d_;
  Layout layout_;
};

TEST_F(InteractiveTest, LegalMoveGivesGreen) {
  InteractiveSession s(d_, layout_);
  const EditFeedback fb = s.move("B", {60, 30});
  EXPECT_TRUE(fb.legal());
  EXPECT_EQ(s.layout().placements[1].position, (geom::Vec2{60, 30}));
}

TEST_F(InteractiveTest, IllegalMoveShowsRed) {
  InteractiveSession s(d_, layout_);
  const EditFeedback fb = s.move("B", {40, 30});  // 20 mm < 30 mm EMD
  EXPECT_FALSE(fb.legal());
  ASSERT_EQ(fb.violations.size(), 1u);
  EXPECT_EQ(fb.violations[0].kind, ViolationKind::kEmd);
}

TEST_F(InteractiveTest, RotationClearsEmd) {
  InteractiveSession s(d_, layout_);
  s.move("B", {40, 30});
  const EditFeedback fb = s.rotate("B", 90.0);
  EXPECT_TRUE(fb.legal());
}

TEST_F(InteractiveTest, UndoRestores) {
  InteractiveSession s(d_, layout_);
  s.move("B", {40, 30});
  EXPECT_TRUE(s.undo());
  EXPECT_EQ(s.layout().placements[1].position, (geom::Vec2{70, 30}));
  EXPECT_FALSE(s.undo());  // single-level history consumed
}

TEST_F(InteractiveTest, UnplaceRemoves) {
  InteractiveSession s(d_, layout_);
  s.unplace("B");
  EXPECT_FALSE(s.layout().placements[1].placed);
  const DrcReport r = s.full_check();
  EXPECT_EQ(r.count(ViolationKind::kUnplaced), 1u);
  EXPECT_TRUE(s.undo());
  EXPECT_TRUE(s.layout().placements[1].placed);
}

TEST_F(InteractiveTest, SuggestPositionFindsNearbyLegalSpot) {
  InteractiveSession s(d_, layout_);
  // Target violates EMD; the adviser must find a legal point nearby.
  const auto pos = s.suggest_position("B", {40, 30}, 30.0);
  ASSERT_TRUE(pos.has_value());
  const EditFeedback fb = s.move("B", *pos);
  EXPECT_TRUE(fb.legal());
}

TEST_F(InteractiveTest, SuggestPositionReturnsTargetIfLegal) {
  InteractiveSession s(d_, layout_);
  const auto pos = s.suggest_position("B", {65, 30}, 30.0);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, (geom::Vec2{65, 30}));
}

TEST_F(InteractiveTest, SuggestRotationOnlyWhenNeeded) {
  InteractiveSession s(d_, layout_);
  // Currently legal: nothing to suggest.
  EXPECT_FALSE(s.suggest_rotation("B").has_value());
  s.move("B", {40, 30});
  const auto rot = s.suggest_rotation("B");
  ASSERT_TRUE(rot.has_value());
  EXPECT_TRUE(s.rotate("B", *rot).legal());
}

TEST_F(InteractiveTest, MoveToBoardValidation) {
  InteractiveSession s(d_, layout_);
  EXPECT_THROW(s.move_to_board("B", 3, {10, 10}), std::invalid_argument);
  d_.set_board_count(2);
  d_.add_area({"b1", 1,
               geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {50, 50}))});
  InteractiveSession s2(d_, layout_);
  const EditFeedback fb = s2.move_to_board("B", 1, {25, 25});
  EXPECT_TRUE(fb.legal());
  EXPECT_EQ(s2.layout().placements[1].board, 1);
}

TEST_F(InteractiveTest, ConstructionValidatesSize) {
  Layout bad;
  bad.placements.resize(1);
  EXPECT_THROW(InteractiveSession(d_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace emi::place
