// svc::AdmissionController: EWMA tracking, cold-start behavior, the two shed
// conditions (queue bound, unmeetable deadline), retry_after hints, and the
// shed counter. All checks are pure functions of fed samples - no service,
// no clock.
#include "src/svc/admission.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace emi::svc {
namespace {

TEST(Admission, EwmaTracksSamples) {
  AdmissionController ac(0.5);
  EXPECT_EQ(ac.ewma_job_ms(), 0.0);  // cold: no evidence
  ac.record_job_ms(100.0);
  EXPECT_DOUBLE_EQ(ac.ewma_job_ms(), 100.0);  // first sample seeds directly
  ac.record_job_ms(200.0);
  EXPECT_DOUBLE_EQ(ac.ewma_job_ms(), 150.0);  // 0.5*200 + 0.5*100
  ac.record_job_ms(150.0);
  EXPECT_DOUBLE_EQ(ac.ewma_job_ms(), 150.0);
}

TEST(Admission, GarbageSamplesIgnored) {
  AdmissionController ac;
  ac.record_job_ms(-5.0);
  ac.record_job_ms(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(ac.ewma_job_ms(), 0.0);
  ac.record_job_ms(80.0);
  ac.record_job_ms(-1.0);  // still ignored after warm-up
  EXPECT_DOUBLE_EQ(ac.ewma_job_ms(), 80.0);
}

TEST(Admission, ColdControllerAdmitsEverythingButAFullQueue) {
  AdmissionController ac;
  // No samples: even a tiny budget is admitted - there is no evidence the
  // deadline is unmeetable, and optimism preserves FIFO fairness.
  EXPECT_TRUE(ac.admit(/*depth=*/7, /*capacity=*/8, /*executors=*/2, /*budget=*/1).admit);
  // The queue bound still holds, with the fixed cold-start hint.
  const AdmissionDecision d = ac.admit(8, 8, 2, 0);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.retry_after_ms, 50);
  EXPECT_NE(d.reason.find("queue full (depth 8 of capacity 8)"), std::string::npos)
      << d.reason;
  EXPECT_EQ(ac.shed_total(), 1u);
}

TEST(Admission, FullQueueHintScalesWithServiceRate) {
  AdmissionController ac(1.0);
  ac.record_job_ms(400.0);
  // One slot frees every ewma/lanes ms: 400/4 = 100.
  const AdmissionDecision d = ac.admit(16, 16, 4, 0);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.retry_after_ms, 100);
}

TEST(Admission, UnmeetableDeadlineIsShedWithExcessHint) {
  AdmissionController ac(1.0);
  ac.record_job_ms(100.0);
  // depth 4, 2 lanes: slot frees after 100*4/2 = 200 ms, job done at 300 ms.
  // Budget 250 ms: projected overshoot of 50 ms becomes the hint.
  const AdmissionDecision d = ac.admit(4, 64, 2, 250);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.retry_after_ms, 50);
  EXPECT_NE(d.reason.find("deadline unmeetable"), std::string::npos) << d.reason;
  EXPECT_NE(d.reason.find("budget 250 ms"), std::string::npos) << d.reason;
  EXPECT_NE(d.reason.find("depth 4"), std::string::npos) << d.reason;
  EXPECT_EQ(ac.shed_total(), 1u);
  // Budget 300 ms exactly meets the projection: admitted.
  EXPECT_TRUE(ac.admit(4, 64, 2, 300).admit);
  // Budgetless submissions never hit the deadline check.
  EXPECT_TRUE(ac.admit(63, 64, 2, 0).admit);
  EXPECT_EQ(ac.shed_total(), 1u);
}

TEST(Admission, AdmittedDecisionIsClean) {
  AdmissionController ac(1.0);
  ac.record_job_ms(10.0);
  const AdmissionDecision d = ac.admit(0, 8, 2, 1000);
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.retry_after_ms, 0);
  EXPECT_TRUE(d.reason.empty());
  EXPECT_EQ(ac.shed_total(), 0u);
}

TEST(Admission, RetryAfterHintCountsTheNewJob) {
  AdmissionController ac(1.0);
  EXPECT_EQ(ac.retry_after_hint(5, 2), 50);  // cold fallback
  ac.record_job_ms(200.0);
  // (depth+1) jobs ahead across 2 lanes at 200 ms each: 200*6/2 = 600.
  EXPECT_EQ(ac.retry_after_hint(5, 2), 600);
  // Hint is never below 1 ms (a 0 would tell the client to hammer).
  ac.record_job_ms(0.0);
  EXPECT_GE(ac.retry_after_hint(0, 8), 1);
  // executors=0 is treated as one lane, not a division by zero.
  EXPECT_GE(ac.retry_after_hint(3, 0), 1);
}

}  // namespace
}  // namespace emi::svc
