#include "src/geom/collision.hpp"

#include <gtest/gtest.h>

namespace emi::geom {
namespace {

TEST(Clearance, OkAtOrAboveClearance) {
  const Rect a = Rect::from_corners({0, 0}, {2, 2});
  const Rect b = Rect::from_corners({3, 0}, {5, 2});  // gap 1
  EXPECT_TRUE(clearance_ok(a, b, 1.0));
  EXPECT_TRUE(clearance_ok(a, b, 0.5));
  EXPECT_FALSE(clearance_ok(a, b, 1.5));
}

TEST(Clearance, OverlapAlwaysFails) {
  const Rect a = Rect::from_corners({0, 0}, {2, 2});
  const Rect b = Rect::from_corners({1, 1}, {3, 3});
  EXPECT_FALSE(clearance_ok(a, b, 0.0));
}

TEST(Keepouts, MultipleVolumes) {
  const std::vector<Cuboid> kos = {
      Cuboid::full_height(Rect::from_corners({0, 0}, {5, 5})),
      {Rect::from_corners({10, 0}, {15, 5}), 6.0, 100.0},
  };
  EXPECT_FALSE(keepouts_ok(Rect::from_corners({1, 1}, {3, 3}), 2.0, kos));
  EXPECT_TRUE(keepouts_ok(Rect::from_corners({11, 1}, {13, 3}), 2.0, kos));
  EXPECT_FALSE(keepouts_ok(Rect::from_corners({11, 1}, {13, 3}), 8.0, kos));
  EXPECT_TRUE(keepouts_ok(Rect::from_corners({20, 20}, {25, 25}), 50.0, kos));
}

TEST(InsideArea, EdgeClearance) {
  const Polygon area = Polygon::rectangle(Rect::from_corners({0, 0}, {20, 20}));
  const Rect fp = Rect::from_corners({1, 1}, {5, 5});
  EXPECT_TRUE(inside_area(fp, area, 0.0));
  EXPECT_FALSE(inside_area(fp, area, 2.0));  // too close to the edge
  EXPECT_TRUE(inside_area(Rect::from_corners({5, 5}, {9, 9}), area, 2.0));
}

TEST(Hpwl, KnownValues) {
  EXPECT_DOUBLE_EQ(hpwl({}), 0.0);
  EXPECT_DOUBLE_EQ(hpwl({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(hpwl({{0, 0}, {3, 4}}), 7.0);
  EXPECT_DOUBLE_EQ(hpwl({{0, 0}, {3, 4}, {1, 6}}), 9.0);
}

}  // namespace
}  // namespace emi::geom
