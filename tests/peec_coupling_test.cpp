#include "src/peec/coupling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/peec/component_model.hpp"

namespace emi::peec {
namespace {

class CouplingTest : public ::testing::Test {
 protected:
  ComponentFieldModel ca_ = x_capacitor("CA");
  ComponentFieldModel cb_ = x_capacitor("CB");
  CouplingExtractor ex_;
};

TEST_F(CouplingTest, SelfInductancePositiveAndCached) {
  const double l1 = ex_.self_inductance(ca_).raw();
  EXPECT_GT(l1, 0.0);
  EXPECT_DOUBLE_EQ(ex_.self_inductance(ca_).raw(), l1);  // cache hit, same value
  // X-cap loop ESL lands in the tens of nH - physically sensible.
  EXPECT_GT(l1 * 1e9, 10.0);
  EXPECT_LT(l1 * 1e9, 120.0);
}

TEST_F(CouplingTest, EffectivePermeabilityScalesSelfL) {
  ComponentFieldModel cored = ca_;
  cored.mu_eff = 10.0;
  EXPECT_NEAR(ex_.self_inductance(cored).raw() / ex_.self_inductance(ca_).raw(), 10.0, 1e-9);
}

TEST_F(CouplingTest, CoreReducesCouplingFactor) {
  // Per the effective-permeability model, the core multiplies L but stray
  // coupling flux stays air-borne, so k drops by sqrt(mu_eff).
  ComponentFieldModel cored = cb_;
  cored.mu_eff = 9.0;
  const double k_air = std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{25.0}));
  const double k_cored = std::fabs(ex_.coupling_at(ca_, cored, Millimeters{25.0}));
  EXPECT_NEAR(k_cored / k_air, 1.0 / 3.0, 0.02);
}

TEST_F(CouplingTest, MutualReciprocity) {
  const PlacedModel a{&ca_, {{0, 0, 0}, 0.0}};
  const PlacedModel b{&cb_, {{22, 5, 0}, 30.0}};
  EXPECT_NEAR(ex_.mutual(a, b).raw(), ex_.mutual(b, a).raw(), 1e-18);
}

TEST_F(CouplingTest, CouplingFactorBelowOne) {
  // Even at tight spacing |k| stays physical.
  const double k = ex_.coupling_at(ca_, cb_, Millimeters{12.0});
  EXPECT_LT(std::fabs(k), 1.0);
}

TEST_F(CouplingTest, KFallsMonotonicallyWithDistance) {
  // Beyond the near-field sign crossover (two coplanar loops flip mutual
  // sign around one pin pitch of separation) |k| falls monotonically.
  const auto curve = ex_.coupling_vs_distance(ca_, cb_, Millimeters{30.0}, Millimeters{90.0}, 9);
  ASSERT_EQ(curve.size(), 9u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].k, curve[i - 1].k) << "at " << curve[i].distance.raw();
  }
}

TEST_F(CouplingTest, FarFieldDipoleScaling) {
  // Two small loops far apart couple like dipoles: k ~ 1/d^3.
  const double k60 = std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{60.0}));
  const double k120 = std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{120.0}));
  EXPECT_NEAR(k60 / k120, 8.0, 2.0);  // cube law within near-field correction
}

TEST_F(CouplingTest, PerpendicularAxesDecouple) {
  const double k0 = std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{20.0}, 0.0, 0.0));
  const double k90 = std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{20.0}, 0.0, 90.0));
  EXPECT_LT(k90, 0.02 * k0);
}

TEST_F(CouplingTest, AngleSweepFollowsCosineShapeFarField) {
  // In the dipole regime the coupling of two in-plane loops follows
  // k(alpha) = k0 * cos(alpha) as one loop rotates - the physical basis of
  // the EMD = PEMD * cos(alpha) rule. Near field deviates, so test far.
  const auto sweep = ex_.coupling_vs_angle(ca_, cb_, Millimeters{60.0}, 7);
  ASSERT_EQ(sweep.size(), 7u);
  const double k0 = sweep.front().k;
  for (const auto& p : sweep) {
    const double cosv = std::cos(geom::deg_to_rad(p.angle_deg));
    EXPECT_NEAR(p.k, k0 * cosv, 0.25 * std::fabs(k0) + 1e-9)
        << "angle " << p.angle_deg;
  }
  EXPECT_NEAR(sweep.back().k, 0.0, 0.05 * std::fabs(k0));
}

TEST_F(CouplingTest, AngleSweepMagnitudeDropsToZeroAtNinety) {
  // Independent of distance regime, rotating one capacitor by 90 degrees
  // kills the coupling - the paper's Fig 6 placement rule.
  for (double d : {20.0, 30.0, 45.0}) {
    const auto sweep = ex_.coupling_vs_angle(ca_, cb_, Millimeters{d}, 4);
    EXPECT_LT(std::fabs(sweep.back().k), 0.05 * std::fabs(sweep.front().k) + 1e-9)
        << "d = " << d;
  }
}

TEST_F(CouplingTest, MinDistanceRuleBrackets) {
  const double pemd = ex_.min_distance_for_coupling(ca_, cb_, 0.01, Millimeters{5.0}, Millimeters{150.0}, Millimeters{0.1}).raw();
  EXPECT_GT(pemd, 5.0);
  EXPECT_LT(pemd, 150.0);
  // At the derived distance the coupling is at or below the threshold...
  EXPECT_LE(std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{pemd})), 0.0105);
  // ...and just inside it is above.
  EXPECT_GT(std::fabs(ex_.coupling_at(ca_, cb_, Millimeters{pemd - 1.0})), 0.0095);
}

TEST_F(CouplingTest, MinDistanceEdgeCases) {
  // Threshold already met at the near end -> returns d_lo.
  EXPECT_DOUBLE_EQ(ex_.min_distance_for_coupling(ca_, cb_, 0.9, Millimeters{5.0}, Millimeters{100.0}).raw(), 5.0);
  // Impossible threshold -> returns d_hi.
  EXPECT_DOUBLE_EQ(ex_.min_distance_for_coupling(ca_, cb_, 1e-9, Millimeters{5.0}, Millimeters{40.0}).raw(), 40.0);
  EXPECT_THROW(ex_.min_distance_for_coupling(ca_, cb_, 0.0, Millimeters{5.0}, Millimeters{40.0}).raw(),
               std::invalid_argument);
}

TEST(ComponentModels, FactoriesProduceSaneGeometry) {
  const auto tant = tantalum_capacitor("T1");
  EXPECT_EQ(tant.kind, ModelKind::kCapacitorLoop);
  EXPECT_EQ(tant.local_path.segments.size(), 4u);

  const auto coil = bobbin_coil("L1");
  EXPECT_EQ(coil.kind, ModelKind::kBobbinCoil);
  EXPECT_GT(coil.mu_eff, 1.0);
  EXPECT_EQ(coil.local_path.segments.size(), 5u * 12u);

  const auto choke2 = cm_choke("CM2");
  // A 3-winding choke under one phase pattern has two energized windings,
  // like the 2-winding one, but the geometry rotates with the phase.
  CmChokeParams p3;
  p3.n_windings = 3;
  p3.excitation_phase = 0;
  const auto choke3a = cm_choke("CM3A", p3);
  p3.excitation_phase = 1;
  const auto choke3b = cm_choke("CM3B", p3);
  EXPECT_EQ(choke3a.local_path.segments.size(), choke2.local_path.segments.size());
  EXPECT_FALSE(choke3a.local_path.segments[0].a ==
               choke3b.local_path.segments[0].a);
  EXPECT_THROW(cm_choke("bad", {.n_windings = 4}), std::invalid_argument);
}

TEST(ComponentModels, CoilToCapCouplingSensible) {
  const auto coil = bobbin_coil("L1");
  const auto cap = x_capacitor("C1");
  CouplingExtractor ex;
  const double k20 = std::fabs(ex.coupling_at(coil, cap, Millimeters{25.0}));
  EXPECT_GT(k20, 1e-4);
  EXPECT_LT(k20, 0.5);
  const double k60 = std::fabs(ex.coupling_at(coil, cap, Millimeters{60.0}));
  EXPECT_LT(k60, k20);
}

TEST(ComponentModels, TwoCoilsOfDifferentSizeCouple) {
  // The Fig 7 configuration: bobbin coils of different size.
  const auto small = bobbin_coil("S", {.radius = Millimeters{4.0}, .length = Millimeters{8.0}, .turns = 25});
  const auto big = bobbin_coil("B", {.radius = Millimeters{8.0}, .length = Millimeters{16.0}, .turns = 50});
  CouplingExtractor ex;
  double prev = 1.0;
  for (double d : {20.0, 30.0, 45.0, 65.0}) {
    const double k = std::fabs(ex.coupling_at(small, big, Millimeters{d}));
    EXPECT_LT(k, prev);
    prev = k;
  }
}

TEST(CouplingExtractor, NullModelThrows) {
  CouplingExtractor ex;
  const PlacedModel bad{nullptr, {}};
  const ComponentFieldModel m = x_capacitor("C");
  const PlacedModel ok{&m, {}};
  EXPECT_THROW(ex.mutual(bad, ok).raw(), std::invalid_argument);
}

}  // namespace
}  // namespace emi::peec
