#include "src/geom/rect.hpp"

#include <gtest/gtest.h>

#include "src/geom/cuboid.hpp"

namespace emi::geom {
namespace {

TEST(Rect, FactoriesNormalizeCorners) {
  const Rect r = Rect::from_corners({5.0, 7.0}, {1.0, 2.0});
  EXPECT_EQ(r.lo, (Vec2{1.0, 2.0}));
  EXPECT_EQ(r.hi, (Vec2{5.0, 7.0}));
  const Rect c = Rect::from_center({0.0, 0.0}, 4.0, 2.0);
  EXPECT_EQ(c.lo, (Vec2{-2.0, -1.0}));
  EXPECT_EQ(c.hi, (Vec2{2.0, 1.0}));
}

TEST(Rect, Dimensions) {
  const Rect r = Rect::from_corners({0, 0}, {4, 3});
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 3.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Vec2{2.0, 1.5}));
}

TEST(Rect, EmptyBehaves) {
  Rect e = Rect::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_DOUBLE_EQ(e.area(), 0.0);
  e.expand(Vec2{1.0, 2.0});
  EXPECT_FALSE(e.is_empty());
  EXPECT_EQ(e.lo, e.hi);
}

TEST(Rect, ContainsPointAndRect) {
  const Rect r = Rect::from_corners({0, 0}, {10, 10});
  EXPECT_TRUE(r.contains(Vec2{5, 5}));
  EXPECT_TRUE(r.contains(Vec2{0, 0}));  // boundary inclusive
  EXPECT_FALSE(r.contains(Vec2{10.1, 5}));
  EXPECT_TRUE(r.contains(Rect::from_corners({1, 1}, {9, 9})));
  EXPECT_FALSE(r.contains(Rect::from_corners({5, 5}, {11, 9})));
}

TEST(Rect, OverlapIsStrict) {
  const Rect a = Rect::from_corners({0, 0}, {5, 5});
  EXPECT_TRUE(a.overlaps(Rect::from_corners({4, 4}, {6, 6})));
  // Touching edges do not count as overlap (abutting placement is legal).
  EXPECT_FALSE(a.overlaps(Rect::from_corners({5, 0}, {10, 5})));
  EXPECT_FALSE(a.overlaps(Rect::from_corners({6, 0}, {10, 5})));
}

TEST(Rect, GapTo) {
  const Rect a = Rect::from_corners({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(a.gap_to(Rect::from_corners({5, 0}, {7, 2})), 3.0);
  EXPECT_DOUBLE_EQ(a.gap_to(Rect::from_corners({0, 6}, {2, 8})), 4.0);
  // Diagonal gap is Euclidean.
  EXPECT_DOUBLE_EQ(a.gap_to(Rect::from_corners({5, 6}, {7, 8})), 5.0);
  EXPECT_DOUBLE_EQ(a.gap_to(Rect::from_corners({1, 1}, {3, 3})), 0.0);
}

TEST(Rect, InflateTranslateExpand) {
  const Rect r = Rect::from_corners({0, 0}, {2, 2});
  EXPECT_EQ(r.inflated(1.0), Rect::from_corners({-1, -1}, {3, 3}));
  EXPECT_EQ(r.translated({1, 2}), Rect::from_corners({1, 2}, {3, 4}));
  Rect e = r;
  e.expand(Rect::from_corners({5, 5}, {6, 6}));
  EXPECT_EQ(e, Rect::from_corners({0, 0}, {6, 6}));
}

TEST(FootprintBbox, AxisAlignedRotations) {
  // 4 x 2 footprint: at 0/180 deg the bbox is 4 x 2, at 90/270 it is 2 x 4.
  const Rect r0 = footprint_bbox({0, 0}, 4.0, 2.0, 0.0);
  EXPECT_NEAR(r0.width(), 4.0, 1e-12);
  EXPECT_NEAR(r0.height(), 2.0, 1e-12);
  const Rect r90 = footprint_bbox({0, 0}, 4.0, 2.0, 90.0);
  EXPECT_NEAR(r90.width(), 2.0, 1e-12);
  EXPECT_NEAR(r90.height(), 4.0, 1e-12);
  const Rect r180 = footprint_bbox({0, 0}, 4.0, 2.0, 180.0);
  EXPECT_NEAR(r180.width(), 4.0, 1e-12);
}

TEST(FootprintBbox, DiagonalRotationGrows) {
  const Rect r45 = footprint_bbox({0, 0}, 4.0, 2.0, 45.0);
  // w*cos + h*sin = (4 + 2)/sqrt(2)
  EXPECT_NEAR(r45.width(), 6.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(r45.height(), 6.0 / std::sqrt(2.0), 1e-12);
}

TEST(Cuboid, BlocksByHeight) {
  // Keepout volume starting 8 mm above the board (housing rib).
  const Cuboid rib{Rect::from_corners({0, 0}, {10, 10}), 8.0, 100.0};
  const Rect fp = Rect::from_corners({2, 2}, {6, 6});
  EXPECT_FALSE(rib.blocks(fp, 5.0));  // short part slides under
  EXPECT_TRUE(rib.blocks(fp, 12.0));  // tall part collides
  EXPECT_FALSE(rib.blocks(Rect::from_corners({20, 20}, {25, 25}), 12.0));
}

TEST(Cuboid, FullHeightBlocksEverything) {
  const Cuboid k = Cuboid::full_height(Rect::from_corners({0, 0}, {10, 10}));
  EXPECT_TRUE(k.blocks(Rect::from_corners({2, 2}, {6, 6}), 0.5));
  EXPECT_TRUE(k.blocks(Rect::from_corners({2, 2}, {6, 6}), 50.0));
}

}  // namespace
}  // namespace emi::geom
