// The service's bounded FIFO job queue: strict submission order out, an
// immediate deterministic error when full or closed, clean executor drain on
// close, and the recovery capacity hook.
#include "src/svc/job_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace emi::svc {
namespace {

TEST(JobQueue, FifoOrderOut) {
  JobQueue q(8);
  for (std::uint64_t id = 1; id <= 5; ++id) ASSERT_TRUE(q.push(id).ok());
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto got = q.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, id);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, FullQueueIsResourceExhaustedNotAStall) {
  JobQueue q(2);
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_TRUE(q.push(2).ok());
  const core::Status st = q.push(3);
  ASSERT_FALSE(st.ok());
  // Overload shed is retryable and the message carries enough for a client
  // to reason about backoff: both the observed depth and the capacity.
  EXPECT_EQ(st.code(), core::ErrorCode::kResourceExhausted);
  EXPECT_NE(st.message().find("depth 2"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("capacity 2"), std::string::npos) << st.message();
  // Draining one slot re-admits.
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push(3).ok());
}

TEST(JobQueue, FreezeStopsAdmissionAndUnblocksConsumers) {
  JobQueue q(4);
  ASSERT_TRUE(q.push(1).ok());
  q.freeze();
  EXPECT_TRUE(q.frozen());
  // Frozen rejects new work with a precondition error (drain is a state the
  // caller chose, not an overload condition)...
  const core::Status st = q.push(2);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::ErrorCode::kFailedPrecondition);
  // ...and forced pushes too: drain means nothing new runs, full stop.
  EXPECT_FALSE(q.push_forced(2).ok());
  // Queued work is NOT handed out - it stays durable on disk for the next
  // process - and blocked consumers wake with nullopt instead of hanging.
  EXPECT_EQ(q.size(), 1u);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  consumer.join();
}

TEST(JobQueue, PushForcedBypassesCapacityOnly) {
  JobQueue q(1);
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_FALSE(q.push(2).ok());        // full for ordinary admission
  EXPECT_TRUE(q.push_forced(2).ok());  // requeue of already-admitted work
  EXPECT_EQ(q.size(), 2u);
  q.close();
  EXPECT_FALSE(q.push_forced(3).ok());  // closed still rejects everything
}

TEST(JobQueue, CloseDrainsThenReturnsNullopt) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(7).ok());
  q.close();
  EXPECT_FALSE(q.push(8).ok());  // closed rejects new work...
  const auto got = q.pop();      // ...but queued work still comes out
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, CloseWakesBlockedConsumers) {
  JobQueue q(4);
  std::vector<std::thread> consumers;
  std::atomic<int> drained{0};
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) {
      }
      drained.fetch_add(1);
    });
  }
  q.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(drained.load(), 3);
}

TEST(JobQueue, RaiseCapacityGrowsNeverShrinks) {
  JobQueue q(2);
  q.raise_capacity(5);
  EXPECT_EQ(q.capacity(), 5u);
  q.raise_capacity(1);  // never shrink: recovery must not lose admission room
  EXPECT_EQ(q.capacity(), 5u);
  for (std::uint64_t id = 1; id <= 5; ++id) EXPECT_TRUE(q.push(id).ok());
  EXPECT_FALSE(q.push(6).ok());
}

TEST(JobQueue, ConcurrentProducersAllIdsDeliveredOnce) {
  JobQueue q(256);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 32; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::uint64_t>(t) * 100 + i).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.close();
  std::vector<bool> seen(400, false);
  while (const auto id = q.pop()) {
    ASSERT_LT(*id, seen.size());
    EXPECT_FALSE(seen[*id]);
    seen[*id] = true;
  }
  int count = 0;
  for (const bool b : seen) count += b ? 1 : 0;
  EXPECT_EQ(count, 128);
}

}  // namespace
}  // namespace emi::svc
