#include "src/place/rotation.hpp"

#include <gtest/gtest.h>

namespace emi::place {
namespace {

Design design_with_rules(std::size_t n, double pemd) {
  Design d;
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {200, 200}))});
  for (std::size_t i = 0; i < n; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.axis_deg = 90.0;
    d.add_component(c);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d.add_emd_rule("C" + std::to_string(i), "C" + std::to_string(j), Millimeters{pemd});
    }
  }
  return d;
}

TEST(Rotation, TwoComponentsBecomePerpendicular) {
  Design d = design_with_rules(2, 20.0);
  const RotationOptimizer opt(d);
  const RotationResult r = opt.optimize(Layout::unplaced(d));
  EXPECT_DOUBLE_EQ(r.initial_emd_mm, 20.0);       // both at rotation 0
  EXPECT_NEAR(r.total_emd_mm, 0.0, 1e-9);         // optimizer decouples them
  EXPECT_NEAR(geom::axis_angle_deg(r.rotation_deg[0] + 90.0, r.rotation_deg[1] + 90.0),
              90.0, 1e-9);
}

TEST(Rotation, ThreeMutuallyCoupledCannotAllDecouple) {
  // With 0/90 rotations and three pairwise rules, at least one pair stays
  // parallel: the optimum is exactly one full EMD left.
  Design d = design_with_rules(3, 20.0);
  const RotationOptimizer opt(d);
  const RotationResult r = opt.optimize(Layout::unplaced(d));
  EXPECT_NEAR(r.total_emd_mm, 20.0, 1e-9);
  EXPECT_LT(r.total_emd_mm, r.initial_emd_mm);
}

TEST(Rotation, PreplacedRotationRespected) {
  Design d = design_with_rules(2, 20.0);
  d.components()[0].preplaced = true;
  Layout fixed = Layout::unplaced(d);
  fixed.placements[0] = {{10, 10}, 90.0, 0, true};
  const RotationOptimizer opt(d);
  const RotationResult r = opt.optimize(fixed);
  EXPECT_DOUBLE_EQ(r.rotation_deg[0], 90.0);  // kept
  // The free one decouples against it: perpendicular again.
  EXPECT_NEAR(r.total_emd_mm, 0.0, 1e-9);
}

TEST(Rotation, RestrictedRotationSetHonored) {
  Design d = design_with_rules(2, 20.0);
  // Second component may only be parallel (0 or 180): no decoupling exists.
  d.components()[1].allowed_rotations = {0.0, 180.0};
  d.components()[0].allowed_rotations = {0.0, 180.0};
  const RotationOptimizer opt(d);
  const RotationResult r = opt.optimize(Layout::unplaced(d));
  EXPECT_NEAR(r.total_emd_mm, 20.0, 1e-9);
}

TEST(Rotation, ObjectiveMatchesManualSum) {
  Design d = design_with_rules(3, 10.0);
  const RotationOptimizer opt(d);
  // All parallel: 3 pairs x 10 mm.
  EXPECT_NEAR(opt.total_emd({0.0, 0.0, 0.0}), 30.0, 1e-12);
  // One perpendicular: pairs (0,1) and (0,2) vanish, (1,2) stays.
  EXPECT_NEAR(opt.total_emd({90.0, 0.0, 0.0}), 10.0, 1e-12);
  EXPECT_THROW(opt.total_emd({0.0}), std::invalid_argument);
}

TEST(Rotation, ConvergesWithinSweepBudget) {
  Design d = design_with_rules(8, 15.0);
  const RotationOptimizer opt(d);
  RotationOptions ro;
  ro.max_sweeps = 20;
  const RotationResult r = opt.optimize(Layout::unplaced(d), ro);
  EXPECT_LE(r.sweeps, 20u);
  EXPECT_LE(r.total_emd_mm, r.initial_emd_mm);
}

TEST(Rotation, NoRulesNoWork) {
  Design d;
  Component c;
  c.name = "X";
  d.add_component(c);
  const RotationOptimizer opt(d);
  const RotationResult r = opt.optimize(Layout::unplaced(d));
  EXPECT_DOUBLE_EQ(r.total_emd_mm, 0.0);
  EXPECT_DOUBLE_EQ(r.initial_emd_mm, 0.0);
}

}  // namespace
}  // namespace emi::place
