#include "src/emi/ferrite.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/ckt/ac.hpp"

namespace emi::emc {
namespace {

TEST(Ferrite, ImpedanceRegions) {
  FerriteBeadParams p;
  p.l_henry = 1e-6;
  p.f_knee_hz = 10e6;
  p.c_par = 1.5e-12;
  p.r_dc = 0.05;
  const double r_flat = 2.0 * std::numbers::pi * p.f_knee_hz * p.l_henry;  // ~63 ohm

  // Inductive region: |Z| ~ wL, doubling f doubles Z.
  const double z1 = ferrite_bead_impedance(p, 100e3);
  const double z2 = ferrite_bead_impedance(p, 200e3);
  EXPECT_NEAR(z2 / z1, 2.0, 0.05);
  EXPECT_NEAR(z1, 2.0 * std::numbers::pi * 100e3 * p.l_henry + p.r_dc, 0.1);

  // Resistive plateau around/above the knee.
  const double z_knee = ferrite_bead_impedance(p, 30e6);
  EXPECT_GT(z_knee, 0.6 * r_flat);
  EXPECT_LT(z_knee, 1.2 * r_flat);

  // Capacitive fall: well past the RC corner 1/(2*pi*R*Cpar) ~ 1.7 GHz the
  // impedance drops far below the plateau.
  EXPECT_LT(ferrite_bead_impedance(p, 5e9), 0.4 * r_flat);
  EXPECT_LT(ferrite_bead_impedance(p, 5e9), ferrite_bead_impedance(p, 100e6));
}

TEST(Ferrite, MonotoneUpToKnee) {
  FerriteBeadParams p;
  double prev = 0.0;
  for (double f = 100e3; f <= 10e6; f *= 2.0) {
    const double z = ferrite_bead_impedance(p, f);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(Ferrite, AttachedBeadMatchesClosedForm) {
  FerriteBeadParams p;
  ckt::Circuit c;
  c.add_vsource("V1", "in", "0", ckt::Waveform::dc(0.0), 1.0);
  c.add_resistor("RS", "in", "a", 50.0);
  attach_ferrite_bead(c, "FB", "a", "b", p);
  c.add_resistor("RL", "b", "0", 50.0);
  for (double f : {1e6, 10e6, 50e6}) {
    const ckt::AcSolution sol = ckt::ac_solve(c, {f});
    // Voltage divider check: |V_b| = |Z_RL / (RS + Z_bead + RL)|.
    const double z_bead = ferrite_bead_impedance(p, f);
    const double expected_mag_lower = 50.0 / (100.0 + z_bead * 1.1);
    const double expected_mag_upper = 50.0 / (100.0 + z_bead * 0.9);
    const double got = std::abs(sol.voltage("b", 0));
    EXPECT_GT(got, expected_mag_lower * 0.9) << f;
    EXPECT_LT(got, expected_mag_upper * 1.1) << f;
  }
}

TEST(Ferrite, BeadDampsFilterResonance) {
  // An undamped LC input filter rings; swapping the ideal inductor for a
  // bead-modelled (lossy) one kills the resonant peak - the practical use.
  const auto peak_gain = [](bool lossy) {
    ckt::Circuit c;
    c.add_vsource("V1", "in", "0", ckt::Waveform::dc(0.0), 1.0);
    c.add_resistor("RS", "in", "a", 0.1);
    if (lossy) {
      // Knee placed near the LC resonance (50 kHz) so the loss resistance
      // ~ 2*pi*f_knee*L lands at the characteristic impedance sqrt(L/C).
      FerriteBeadParams p;
      p.l_henry = 10e-6;
      p.f_knee_hz = 60e3;
      attach_ferrite_bead(c, "FB", "a", "b", p);
    } else {
      c.add_inductor("L1", "a", "b", 10e-6);
    }
    c.add_capacitor("C1", "b", "0", 1e-6);
    double peak = 0.0;
    for (double f = 20e3; f < 300e3; f *= 1.05) {
      const ckt::AcSolution sol = ckt::ac_solve(c, {f});
      peak = std::max(peak, std::abs(sol.voltage("b", 0)));
    }
    return peak;
  };
  EXPECT_GT(peak_gain(false), 5.0);   // sharp resonance
  EXPECT_LT(peak_gain(true), 3.0);    // damped
}

TEST(Ferrite, Validation) {
  ckt::Circuit c;
  FerriteBeadParams bad;
  bad.l_henry = 0.0;
  EXPECT_THROW(attach_ferrite_bead(c, "FB", "a", "b", bad), std::invalid_argument);
  EXPECT_THROW(ferrite_bead_impedance({}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace emi::emc
