#include "src/place/compactor.hpp"

#include <gtest/gtest.h>

#include "src/place/drc.hpp"
#include "src/place/placer.hpp"

namespace emi::place {
namespace {

Design spread_design(std::size_t n, double pemd = 0.0) {
  Design d;
  d.set_clearance(Millimeters{1.0});
  d.add_area({"board", 0,
              geom::Polygon::rectangle(geom::Rect::from_corners({0, 0}, {120, 90}))});
  for (std::size_t i = 0; i < n; ++i) {
    Component c;
    c.name = "C" + std::to_string(i);
    c.width_mm = 10;
    c.depth_mm = 8;
    c.height_mm = 5;
    c.axis_deg = 90.0;
    d.add_component(c);
  }
  if (pemd > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d.add_emd_rule("C" + std::to_string(i), "C" + std::to_string(j), Millimeters{pemd});
      }
    }
  }
  return d;
}

// Scatter components loosely over the board.
Layout scattered(const Design& d) {
  Layout l = Layout::unplaced(d);
  const double xs[] = {20, 60, 100, 30, 80, 50, 95, 25, 70};
  const double ys[] = {20, 70, 30, 60, 15, 45, 70, 80, 55};
  for (std::size_t i = 0; i < d.components().size(); ++i) {
    l.placements[i] = {{xs[i % 9], ys[i % 9]}, 0.0, 0, true};
  }
  return l;
}

TEST(Compactor, ShrinksAreaAndStaysLegal) {
  Design d = spread_design(6);
  Layout l = scattered(d);
  ASSERT_TRUE(DrcEngine(d).check(l).clean());
  const CompactionResult res = compact_layout(d, l);
  EXPECT_LT(res.area_after_mm2, res.area_before_mm2);
  EXPECT_GT(res.reduction(), 0.3);  // scattered layouts compact a lot
  EXPECT_GT(res.moves, 0u);
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

TEST(Compactor, RespectsEmdRules) {
  Design d = spread_design(4, 25.0);
  Layout l = scattered(d);
  const CompactionResult res = compact_layout(d, l);
  EXPECT_LE(res.area_after_mm2, res.area_before_mm2);
  const DrcReport rep = DrcEngine(d).check(l);
  EXPECT_EQ(rep.count(ViolationKind::kEmd), 0u);
  // The rules put a floor under the compaction: components stay >= 25 mm
  // apart (parallel axes everywhere in this design).
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_GE(geom::distance(l.placements[i].position, l.placements[j].position),
                25.0 - 1e-6);
    }
  }
}

TEST(Compactor, PreplacedComponentsDoNotMove) {
  Design d = spread_design(4);
  d.components()[2].preplaced = true;
  Layout l = scattered(d);
  const geom::Vec2 fixed_pos = l.placements[2].position;
  compact_layout(d, l);
  EXPECT_EQ(l.placements[2].position, fixed_pos);
}

TEST(Compactor, GravityCornersWork) {
  for (const auto corner :
       {CompactionOptions::Corner::kLowLow, CompactionOptions::Corner::kHighLow,
        CompactionOptions::Corner::kLowHigh, CompactionOptions::Corner::kHighHigh}) {
    Design d = spread_design(4);
    Layout l = scattered(d);
    CompactionOptions opt;
    opt.corner = corner;
    const CompactionResult res = compact_layout(d, l, opt);
    EXPECT_LT(res.area_after_mm2, res.area_before_mm2);
    EXPECT_TRUE(DrcEngine(d).check(l).clean());
  }
}

TEST(Compactor, IdempotentOnceConverged) {
  Design d = spread_design(5);
  Layout l = scattered(d);
  compact_layout(d, l);
  const CompactionResult second = compact_layout(d, l);
  EXPECT_NEAR(second.reduction(), 0.0, 0.02);
}

TEST(Compactor, AfterAutoPlaceStillImproves) {
  // The auto placer packs reasonably; compaction should only ever shrink.
  Design d = spread_design(8, 14.0);
  Layout l = Layout::unplaced(d);
  auto_place(d, l);
  const CompactionResult res = compact_layout(d, l);
  EXPECT_LE(res.area_after_mm2, res.area_before_mm2 + 1e-9);
  EXPECT_TRUE(DrcEngine(d).check(l).clean());
}

}  // namespace
}  // namespace emi::place
