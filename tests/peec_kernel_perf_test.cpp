// Fast perf smoke for the sampled kernel, counter-based so it is robust on
// loaded CI machines: the sampled kernel must not perform more integrand
// evaluations than the legacy nested kernel, and the fast-path configuration
// must (a) agree with the exact kernel within the documented bounds and
// (b) measurably cut the evaluation count on a realistic pair.
#include <gtest/gtest.h>

#include <cmath>

#include "src/peec/cluster_tree.hpp"
#include "src/peec/component_model.hpp"
#include "src/peec/partial_inductance.hpp"
#include "src/peec/sampled_path.hpp"

namespace emi::peec {
namespace {

struct KernelDelta {
  KernelStats before = kernel_stats();
  KernelStats sample() const {
    const KernelStats now = kernel_stats();
    return {now.sample_evals - before.sample_evals,
            now.exact_pairs - before.exact_pairs,
            now.analytic_pairs - before.analytic_pairs,
            now.far_field_pairs - before.far_field_pairs,
            now.cluster_pairs - before.cluster_pairs,
            now.cluster_skipped - before.cluster_skipped};
  }
};

TEST(KernelPerfSmoke, SampledDoesNoMoreWorkThanLegacy) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{30.0, 4.0, 0.0}, 25.0});
  const QuadratureOptions q{4, 2};

  KernelDelta legacy_delta;
  const double ref = path_mutual_legacy(pa, pb, q);
  const KernelStats legacy = legacy_delta.sample();

  KernelDelta sampled_delta;
  const double got = path_mutual(pa, pb, q);
  const KernelStats sampled = sampled_delta.sample();

  EXPECT_EQ(ref, got);
  ASSERT_GT(legacy.sample_evals, 0u);
  EXPECT_LE(sampled.sample_evals, legacy.sample_evals);
  EXPECT_EQ(sampled.exact_pairs, legacy.exact_pairs);
}

TEST(KernelPerfSmoke, FastPathsAgreeAndSkipEvaluations) {
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  // Far enough that the far-field gate admits most pairs at the default
  // ratio, near enough that the mutual is still well above zero.
  const SegmentPath pb = mb.path_at(Pose{{120.0, 10.0, 0.0}, 0.0});
  const QuadratureOptions q{4, 2};

  KernelDelta exact_delta;
  const double exact = path_mutual(pa, pb, q);
  const KernelStats exact_stats = exact_delta.sample();

  KernelOptions fast;
  fast.analytic_parallel = true;
  fast.far_field = true;
  KernelDelta fast_delta;
  const double approx = path_mutual(pa, pb, q, fast);
  const KernelStats fast_stats = fast_delta.sample();

  // Documented far-field bound at the default ratio 8: 1.5/64.
  ASSERT_NE(exact, 0.0);
  EXPECT_LT(std::fabs((approx - exact) / exact), 1.5 / 64.0);
  // The fast configuration must actually reroute pairs off the exact path.
  EXPECT_GT(fast_stats.analytic_pairs + fast_stats.far_field_pairs, 0u);
  EXPECT_LT(fast_stats.sample_evals, exact_stats.sample_evals);
  EXPECT_LT(fast_stats.exact_pairs, exact_stats.exact_pairs);
}

TEST(KernelPerfSmoke, ClusteredExtractionPopulatesCountersAndCutsWork) {
  // Two coils far apart: the root cluster pair is admitted outright, so the
  // clustered run must tally cluster traffic, skip (nearly) every exact
  // pair integral, and stay inside the documented theta bound.
  const ComponentFieldModel ma = bobbin_coil("A");
  const ComponentFieldModel mb = bobbin_coil("B");
  const SegmentPath pa = ma.path_at({});
  const SegmentPath pb = mb.path_at(Pose{{150.0, 10.0, 0.0}, 0.0});
  const QuadratureOptions q{4, 2};

  KernelDelta exact_delta;
  const double exact = path_mutual(pa, pb, q);
  const KernelStats exact_stats = exact_delta.sample();

  KernelOptions copt;
  copt.cluster = true;
  copt.cluster_theta = 4.0;
  KernelDelta clus_delta;
  const ClusteredMutual clus = path_mutual_clustered_stats(pa, pb, q, copt);
  const KernelStats clus_stats = clus_delta.sample();

  // The KernelStats plumbing is what FlowResult profile counters surface;
  // both cluster counters must be populated by a clustered run.
  EXPECT_GT(clus_stats.cluster_pairs, 0u);
  EXPECT_GT(clus_stats.cluster_skipped, 0u);
  EXPECT_EQ(clus_stats.cluster_pairs, clus.cluster_pairs);
  EXPECT_EQ(clus_stats.cluster_skipped, clus.cluster_skipped);
  // Every covered pair is an exact integral not performed. Covered pairs
  // include the orthogonal ones the exact kernel would have skipped without
  // tallying, so the sum brackets between the baseline exact count and the
  // full double-sum pair count.
  EXPECT_GE(clus_stats.exact_pairs + clus_stats.cluster_skipped,
            exact_stats.exact_pairs);
  EXPECT_LE(clus_stats.exact_pairs + clus_stats.cluster_skipped,
            static_cast<std::uint64_t>(pa.segments.size()) *
                pb.segments.size());
  EXPECT_LT(clus_stats.sample_evals, exact_stats.sample_evals);
  EXPECT_LE(std::fabs(clus.value - exact), clus.error_bound);

  // An exact-by-default run never touches the cluster counters.
  KernelDelta default_delta;
  path_mutual(pa, pb, q);
  const KernelStats default_stats = default_delta.sample();
  EXPECT_EQ(default_stats.cluster_pairs, 0u);
  EXPECT_EQ(default_stats.cluster_skipped, 0u);
}

}  // namespace
}  // namespace emi::peec
