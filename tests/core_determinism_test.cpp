// Serial-vs-parallel determinism (the core layer's headline guarantee):
// running the same computation with 1 lane and with N lanes must produce
// bit-identical results - rankings, spectra and layouts compared with
// operator== on doubles, no tolerances. This is what makes the parallel
// refactor safe to adopt everywhere: thread count is a pure performance knob.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/thread_pool.hpp"
#include "src/io/reports.hpp"
#include "src/emi/measurement.hpp"
#include "src/emi/sensitivity.hpp"
#include "src/flow/buck_converter.hpp"
#include "src/flow/design_flow.hpp"

namespace emi {
namespace {

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() {
    core::ThreadPool::set_global_thread_count(core::ThreadPool::default_thread_count());
  }
};

void expect_same_spectrum(const emc::EmissionSpectrum& a,
                          const emc::EmissionSpectrum& b) {
  ASSERT_EQ(a.freqs_hz.size(), b.freqs_hz.size());
  for (std::size_t i = 0; i < a.freqs_hz.size(); ++i) {
    EXPECT_EQ(a.freqs_hz[i], b.freqs_hz[i]) << i;
    EXPECT_EQ(a.level_dbuv[i], b.level_dbuv[i]) << i;  // bit-identical
  }
}

void expect_same_layout(const place::Layout& a, const place::Layout& b) {
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].position.x, b.placements[i].position.x) << i;
    EXPECT_EQ(a.placements[i].position.y, b.placements[i].position.y) << i;
    EXPECT_EQ(a.placements[i].rot_deg, b.placements[i].rot_deg) << i;
    EXPECT_EQ(a.placements[i].board, b.placements[i].board) << i;
    EXPECT_EQ(a.placements[i].placed, b.placements[i].placed) << i;
  }
}

TEST(Determinism, SensitivityRankingIsThreadCountInvariant) {
  ThreadCountGuard guard;
  const flow::BuckConverter bc = flow::make_buck_converter();
  emc::SensitivityOptions opt;
  opt.sweep.n_points = 40;

  core::ThreadPool::set_global_thread_count(1);
  const auto serial =
      emc::rank_coupling_sensitivity(bc.circuit, bc.meas_node, bc.noise, opt);
  ASSERT_FALSE(serial.empty());

  for (std::size_t lanes : {2u, 4u}) {
    core::ThreadPool::set_global_thread_count(lanes);
    const auto parallel =
        emc::rank_coupling_sensitivity(bc.circuit, bc.meas_node, bc.noise, opt);
    ASSERT_EQ(serial.size(), parallel.size()) << lanes << " lanes";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].inductor_a, parallel[i].inductor_a) << i;
      EXPECT_EQ(serial[i].inductor_b, parallel[i].inductor_b) << i;
      EXPECT_EQ(serial[i].max_delta_db, parallel[i].max_delta_db) << i;
      EXPECT_EQ(serial[i].mean_delta_db, parallel[i].mean_delta_db) << i;
    }
  }
}

// The whole pipeline - sensitivity, extraction (with its caches), emission
// sweeps, auto-placement - end to end, 1 lane vs 4 lanes.
TEST(Determinism, DesignFlowIsThreadCountInvariant) {
  ThreadCountGuard guard;
  flow::FlowOptions opt;
  opt.sweep.n_points = 40;

  const auto run_with = [&](std::size_t lanes) {
    core::ThreadPool::set_global_thread_count(lanes);
    flow::BuckConverter bc = flow::make_buck_converter();
    return flow::run_design_flow(bc, flow::layout_unfavorable(bc), opt);
  };

  const flow::FlowResult serial = run_with(1);
  const flow::FlowResult parallel = run_with(4);

  ASSERT_EQ(serial.ranking.size(), parallel.ranking.size());
  for (std::size_t i = 0; i < serial.ranking.size(); ++i) {
    EXPECT_EQ(serial.ranking[i].inductor_a, parallel.ranking[i].inductor_a);
    EXPECT_EQ(serial.ranking[i].inductor_b, parallel.ranking[i].inductor_b);
    EXPECT_EQ(serial.ranking[i].max_delta_db, parallel.ranking[i].max_delta_db);
  }
  EXPECT_EQ(serial.simulated_pairs, parallel.simulated_pairs);
  ASSERT_EQ(serial.rules.size(), parallel.rules.size());
  for (std::size_t i = 0; i < serial.rules.size(); ++i) {
    EXPECT_EQ(serial.rules[i].comp_a, parallel.rules[i].comp_a);
    EXPECT_EQ(serial.rules[i].comp_b, parallel.rules[i].comp_b);
    EXPECT_EQ(serial.rules[i].pemd.raw(), parallel.rules[i].pemd.raw());
  }
  expect_same_spectrum(serial.initial_prediction, parallel.initial_prediction);
  expect_same_spectrum(serial.improved_prediction, parallel.improved_prediction);
  expect_same_layout(serial.improved_layout, parallel.improved_layout);
  EXPECT_EQ(serial.peak_improvement_db, parallel.peak_improvement_db);

  // The profile rides along with the result: stage timers, cache traffic
  // and pool activity all present and printable.
  EXPECT_GT(serial.profile.seconds("flow.sensitivity_s"), 0.0);
  EXPECT_GT(serial.profile.count("peec.mutual_cache_hits") +
                serial.profile.count("peec.mutual_cache_misses"),
            0u);
  EXPECT_EQ(parallel.profile.count("pool.threads"), 4u);
  std::ostringstream os;
  io::write_profile(os, parallel.profile);
  EXPECT_NE(os.str().find("flow.placement_s"), std::string::npos);
  EXPECT_NE(os.str().find("pool.batches"), std::string::npos);
}

}  // namespace
}  // namespace emi
