#include "src/core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/profile.hpp"
#include "src/core/thread_pool.hpp"

namespace emi::core {
namespace {

// Deterministic pseudo-random doubles (no seed dependence on the host).
std::vector<double> noise_vector(std::size_t n) {
  std::vector<double> v(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    v[i] = static_cast<double>(s % 10000) / 7.0 - 500.0;
  }
  return v;
}

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() {
    ThreadPool::set_global_thread_count(ThreadPool::default_thread_count());
  }
};

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  ThreadPool::set_global_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 7);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelSum, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<double> v = noise_vector(4097);
  const auto map = [&](std::size_t i) { return v[i]; };
  ThreadPool::set_global_thread_count(1);
  const double serial = parallel_sum(0, v.size(), map, 16);
  for (std::size_t lanes : {2u, 4u, 8u}) {
    ThreadPool::set_global_thread_count(lanes);
    const double parallel = parallel_sum(0, v.size(), map, 16);
    // Bit-identical, not just close: the ordered-reduction contract.
    EXPECT_EQ(serial, parallel) << lanes << " lanes";
  }
}

TEST(ParallelReduce, OrderedReductionMatchesExplicitChunkFold) {
  ThreadCountGuard guard;
  ThreadPool::set_global_thread_count(4);
  const std::vector<double> v = noise_vector(100);
  const std::size_t grain = 8;
  const double got = parallel_sum(0, v.size(), [&](std::size_t i) { return v[i]; },
                                  grain);
  double want = 0.0;
  for (std::size_t lo = 0; lo < v.size(); lo += grain) {
    double chunk = 0.0;
    for (std::size_t i = lo; i < std::min(lo + grain, v.size()); ++i) chunk += v[i];
    want += chunk;
  }
  EXPECT_EQ(got, want);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  ThreadPool::set_global_thread_count(4);
  std::vector<std::atomic<int>> visits(64 * 64);
  parallel_for(0, 64, [&](std::size_t i) {
    parallel_for(0, 64, [&](std::size_t j) { visits[i * 64 + j].fetch_add(1); });
  });
  for (std::size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, StatsCountBatchesAndChunks) {
  ThreadCountGuard guard;
  ThreadPool::set_global_thread_count(2);
  const PoolStats before = ThreadPool::global().stats();
  parallel_for(0, 100, [](std::size_t) {}, 10);
  const PoolStats after = ThreadPool::global().stats();
  EXPECT_EQ(after.batches - before.batches, 1u);
  EXPECT_EQ(after.chunks - before.chunks, 10u);
}

TEST(ThreadPool, GlobalThreadCountFollowsSetting) {
  ThreadCountGuard guard;
  ThreadPool::set_global_thread_count(3);
  EXPECT_EQ(ThreadPool::global_thread_count(), 3u);
  ThreadPool::set_global_thread_count(1);
  EXPECT_EQ(ThreadPool::global_thread_count(), 1u);
}

TEST(Profile, AccumulatesAndSortsEntries) {
  Profile p;
  p.add_count("b.count", 2);
  p.add_count("b.count", 3);
  p.add_seconds("a.time", 0.5);
  { ScopedTimer t(p, "a.time"); }
  EXPECT_EQ(p.count("b.count"), 5u);
  EXPECT_GE(p.seconds("a.time"), 0.5);
  const auto entries = p.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a.time");
  EXPECT_EQ(entries[1].name, "b.count");

  Profile q;
  q.add_count("b.count", 1);
  q.merge(p);
  EXPECT_EQ(q.count("b.count"), 6u);
}

}  // namespace
}  // namespace emi::core
