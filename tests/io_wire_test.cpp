// Wire framing for the serve protocol: byte streams re-sliced into lines
// across arbitrary chunk boundaries, CRLF tolerance, the oversized-line
// guard, and the token/kv parsing the command handler builds on.
#include "src/io/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace emi::io {
namespace {

TEST(SplitTokens, SplitsOnSpacesAndTabs) {
  const std::vector<std::string> t = split_tokens("  SUBMIT \t topology=buck  ");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "SUBMIT");
  EXPECT_EQ(t[1], "topology=buck");
  EXPECT_TRUE(split_tokens("").empty());
  EXPECT_TRUE(split_tokens(" \t ").empty());
}

TEST(KvValue, FirstMatchWinsAndEmptyValuesAreValues) {
  const std::vector<std::string> t =
      split_tokens("SUBMIT topology=buck topology=boost client=");
  EXPECT_EQ(kv_value(t, "topology"), "buck");
  EXPECT_EQ(kv_value(t, "client"), "");
  EXPECT_FALSE(kv_value(t, "points").has_value());
  // A bare `topology` token (no '=') is not a field.
  EXPECT_FALSE(kv_value(split_tokens("STATUS topology"), "topology").has_value());
}

TEST(LineFramer, ReassemblesAcrossChunkBoundaries) {
  LineFramer f;
  ASSERT_TRUE(f.feed("STA").ok());
  EXPECT_FALSE(f.next_line().has_value());
  ASSERT_TRUE(f.feed("TUS job=1\nPI").ok());
  EXPECT_EQ(f.next_line(), "STATUS job=1");
  EXPECT_FALSE(f.next_line().has_value());
  ASSERT_TRUE(f.feed("NG\n").ok());
  EXPECT_EQ(f.next_line(), "PING");
}

TEST(LineFramer, SeveralLinesPerFeedAndCrlf) {
  LineFramer f;
  ASSERT_TRUE(f.feed("PING\r\nSTATS\n\n").ok());
  EXPECT_EQ(f.next_line(), "PING");
  EXPECT_EQ(f.next_line(), "STATS");
  EXPECT_EQ(f.next_line(), "");  // blank line is an (empty) line
  EXPECT_FALSE(f.next_line().has_value());
}

TEST(LineFramer, OversizedLinePoisons) {
  LineFramer f(16);
  const core::Status st = f.feed(std::string(17, 'x'));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::ErrorCode::kInvalidArgument);
  EXPECT_TRUE(f.poisoned());
  EXPECT_FALSE(f.next_line().has_value());
  // Poisoned framers stay poisoned: the connection must be dropped.
  EXPECT_EQ(f.feed("PING\n").code(), core::ErrorCode::kFailedPrecondition);
}

TEST(LineFramer, TerminatedLinesNeverPoisonRegardlessOfVolume) {
  LineFramer f(32);
  // Many short lines through a tiny guard: total volume is unbounded, only
  // individual unterminated lines count against the limit.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(f.feed("STATUS job=42\n").ok());
    ASSERT_EQ(f.next_line(), "STATUS job=42");
  }
  EXPECT_FALSE(f.poisoned());
}

// --- deterministic poisoning fuzz battery -----------------------------------
//
// The framer against a reference model over seeded adversarial streams:
// random chunk boundaries, CRLF/LF mixing, embedded NUL/control bytes, and
// oversized unterminated runs. The model mirrors the documented contract
// exactly - a feed poisons iff the unconsumed bytes exceed the guard with no
// newline among them - so any divergence (wrong line bytes, missed or
// spurious poisoning, a crash) fails the test with the offending seed.

// Counter-based PRNG so the battery replays bit-identically (no std::rand /
// <random> engines, per the determinism rules).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

// Reference model of LineFramer: `residual` holds unconsumed bytes. Returns
// the lines a fully drained framer must emit for this feed, or nullopt for
// "this feed must poison".
std::optional<std::vector<std::string>> model_feed(std::string& residual,
                                                   std::string_view bytes,
                                                   std::size_t max_line) {
  residual.append(bytes);
  if (residual.find('\n') == std::string::npos) {
    if (residual.size() > max_line) return std::nullopt;
    return std::vector<std::string>{};
  }
  std::vector<std::string> lines;
  std::size_t pos = 0, nl = 0;
  while ((nl = residual.find('\n', pos)) != std::string::npos) {
    std::size_t end = nl;
    if (end > pos && residual[end - 1] == '\r') --end;
    lines.push_back(residual.substr(pos, end - pos));
    pos = nl + 1;
  }
  residual.erase(0, pos);
  return lines;
}

TEST(LineFramerFuzz, RandomChunksMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng{seed};
    const std::size_t max_line = 32 + rng.below(96);
    LineFramer f(max_line);
    std::string residual;

    // A stream of mostly-reasonable lines with adversarial bytes mixed in.
    std::string stream;
    for (int i = 0; i < 200; ++i) {
      const std::size_t len = rng.below(max_line);  // always under the guard
      std::string line;
      for (std::size_t j = 0; j < len; ++j) {
        // Any byte but '\n'; '\r' only mid-line so LF vs CRLF stays the
        // terminator's choice, not the payload's.
        char c = static_cast<char>(rng.next() & 0xff);
        if (c == '\n' || (c == '\r' && j + 1 == len)) c = 'x';
        line.push_back(c);
      }
      stream += line;
      stream += rng.below(3) == 0 ? "\r\n" : "\n";
    }

    bool poisoned = false;
    std::size_t off = 0;
    while (off < stream.size() && !poisoned) {
      const std::size_t n = 1 + rng.below(48);
      const std::string_view chunk{stream.data() + off,
                                   std::min(n, stream.size() - off)};
      off += chunk.size();
      const auto expect = model_feed(residual, chunk, max_line);
      const core::Status st = f.feed(chunk);
      ASSERT_EQ(st.ok(), expect.has_value()) << "seed " << seed << " off " << off;
      if (!expect.has_value()) {
        poisoned = true;
        break;
      }
      for (const std::string& want : *expect) {
        const auto got = f.next_line();
        ASSERT_TRUE(got.has_value()) << "seed " << seed;
        EXPECT_EQ(*got, want) << "seed " << seed;
        EXPECT_LE(got->size(), max_line) << "seed " << seed;
      }
      EXPECT_FALSE(f.next_line().has_value()) << "seed " << seed;
    }
    // Lines always stay under the guard here, so no stream may poison.
    EXPECT_FALSE(poisoned) << "seed " << seed;
    EXPECT_FALSE(f.poisoned());
  }
}

TEST(LineFramerFuzz, OversizedRunsPoisonExactlyPerModel) {
  int poisons = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    Rng rng{seed};
    const std::size_t max_line = 24 + rng.below(40);
    LineFramer f(max_line);
    std::string residual;
    bool poisoned = false;

    for (int round = 0; round < 80 && !poisoned; ++round) {
      // Mostly garbage without newlines; occasional terminators reprieve
      // the buffer.
      const std::size_t len = 1 + rng.below(max_line);
      std::string chunk(len, '\0');
      for (char& c : chunk) {
        c = static_cast<char>('A' + rng.below(26));
      }
      if (rng.below(4) == 0) chunk[rng.below(chunk.size())] = '\n';

      const auto expect = model_feed(residual, chunk, max_line);
      const core::Status st = f.feed(chunk);
      ASSERT_EQ(st.ok(), expect.has_value()) << "seed " << seed;
      if (!expect.has_value()) {
        EXPECT_EQ(st.code(), core::ErrorCode::kInvalidArgument);
        EXPECT_TRUE(f.poisoned());
        poisoned = true;
        ++poisons;
        break;
      }
      for (const std::string& want : *expect) {
        const auto got = f.next_line();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, want);
      }
    }
    if (poisoned) {
      // Poison is sticky under further abuse: every subsequent feed fails
      // with failed_precondition and no buffered bytes ever leak out.
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(f.feed("PING\n").code(), core::ErrorCode::kFailedPrecondition);
        EXPECT_FALSE(f.next_line().has_value());
      }
      // Recovery is per-connection: a fresh framer (new connection) serves
      // the same peer normally.
      LineFramer fresh(max_line);
      EXPECT_TRUE(fresh.feed("PING\n").ok());
      EXPECT_EQ(fresh.next_line(), "PING");
    }
  }
  // The corpus must actually reach the poison path; if retuning the
  // generator ever makes it unreachable, this guards the battery's bite.
  EXPECT_GT(poisons, 5);
}

TEST(LineFramerFuzz, GuardBoundaryIsExact) {
  // max_line pending bytes without a newline: legal. One more: poison.
  LineFramer ok(16);
  ASSERT_TRUE(ok.feed(std::string(16, 'a')).ok());
  EXPECT_FALSE(ok.poisoned());
  ASSERT_TRUE(ok.feed("\n").ok());  // terminator arrives; full line comes out
  EXPECT_EQ(ok.next_line(), std::string(16, 'a'));

  LineFramer over(16);
  EXPECT_FALSE(over.feed(std::string(17, 'a')).ok());
  EXPECT_TRUE(over.poisoned());

  // NUL bytes are payload, not terminators.
  LineFramer nul(64);
  const std::string embedded = std::string("AB") + '\0' + "CD";
  ASSERT_TRUE(nul.feed(embedded + "\n").ok());
  EXPECT_EQ(nul.next_line(), embedded);
}

}  // namespace
}  // namespace emi::io
