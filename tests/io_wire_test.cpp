// Wire framing for the serve protocol: byte streams re-sliced into lines
// across arbitrary chunk boundaries, CRLF tolerance, the oversized-line
// guard, and the token/kv parsing the command handler builds on.
#include "src/io/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace emi::io {
namespace {

TEST(SplitTokens, SplitsOnSpacesAndTabs) {
  const std::vector<std::string> t = split_tokens("  SUBMIT \t topology=buck  ");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "SUBMIT");
  EXPECT_EQ(t[1], "topology=buck");
  EXPECT_TRUE(split_tokens("").empty());
  EXPECT_TRUE(split_tokens(" \t ").empty());
}

TEST(KvValue, FirstMatchWinsAndEmptyValuesAreValues) {
  const std::vector<std::string> t =
      split_tokens("SUBMIT topology=buck topology=boost client=");
  EXPECT_EQ(kv_value(t, "topology"), "buck");
  EXPECT_EQ(kv_value(t, "client"), "");
  EXPECT_FALSE(kv_value(t, "points").has_value());
  // A bare `topology` token (no '=') is not a field.
  EXPECT_FALSE(kv_value(split_tokens("STATUS topology"), "topology").has_value());
}

TEST(LineFramer, ReassemblesAcrossChunkBoundaries) {
  LineFramer f;
  ASSERT_TRUE(f.feed("STA").ok());
  EXPECT_FALSE(f.next_line().has_value());
  ASSERT_TRUE(f.feed("TUS job=1\nPI").ok());
  EXPECT_EQ(f.next_line(), "STATUS job=1");
  EXPECT_FALSE(f.next_line().has_value());
  ASSERT_TRUE(f.feed("NG\n").ok());
  EXPECT_EQ(f.next_line(), "PING");
}

TEST(LineFramer, SeveralLinesPerFeedAndCrlf) {
  LineFramer f;
  ASSERT_TRUE(f.feed("PING\r\nSTATS\n\n").ok());
  EXPECT_EQ(f.next_line(), "PING");
  EXPECT_EQ(f.next_line(), "STATS");
  EXPECT_EQ(f.next_line(), "");  // blank line is an (empty) line
  EXPECT_FALSE(f.next_line().has_value());
}

TEST(LineFramer, OversizedLinePoisons) {
  LineFramer f(16);
  const core::Status st = f.feed(std::string(17, 'x'));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::ErrorCode::kInvalidArgument);
  EXPECT_TRUE(f.poisoned());
  EXPECT_FALSE(f.next_line().has_value());
  // Poisoned framers stay poisoned: the connection must be dropped.
  EXPECT_EQ(f.feed("PING\n").code(), core::ErrorCode::kFailedPrecondition);
}

TEST(LineFramer, TerminatedLinesNeverPoisonRegardlessOfVolume) {
  LineFramer f(32);
  // Many short lines through a tiny guard: total volume is unbounded, only
  // individual unterminated lines count against the limit.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(f.feed("STATUS job=42\n").ok());
    ASSERT_EQ(f.next_line(), "STATUS job=42");
  }
  EXPECT_FALSE(f.poisoned());
}

}  // namespace
}  // namespace emi::io
