#include "src/numeric/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emi::num {
namespace {

TEST(Gauss, ExactForPolynomials) {
  // An n-point rule integrates polynomials up to degree 2n-1 exactly.
  const auto cubic = [](double x) { return 3.0 * x * x * x - x * x + 2.0; };
  // integral over [0, 2] = 12 - 8/3 + 4
  const double expected = 12.0 - 8.0 / 3.0 + 4.0;
  EXPECT_NEAR(gauss_legendre(cubic, 0.0, 2.0, 2), expected, 1e-12);
  EXPECT_NEAR(gauss_legendre(cubic, 0.0, 2.0, 5), expected, 1e-12);
}

TEST(Gauss, WeightsSumToTwo) {
  for (std::size_t order = 1; order <= 8; ++order) {
    const GaussRule r = gauss_rule(order);
    double s = 0.0;
    for (double w : r.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-12) << "order " << order;
  }
}

TEST(Gauss, NodesSymmetric) {
  for (std::size_t order = 1; order <= 8; ++order) {
    const GaussRule r = gauss_rule(order);
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      EXPECT_NEAR(r.nodes[i], -r.nodes[r.nodes.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Gauss, ThrowsOnBadOrder) {
  EXPECT_THROW(gauss_rule(0), std::invalid_argument);
  EXPECT_THROW(gauss_rule(9), std::invalid_argument);
}

class GaussConvergence : public ::testing::TestWithParam<std::size_t> {};

// exp(x) over [0, 1]: error shrinks rapidly with order.
TEST_P(GaussConvergence, ExpIntegral) {
  const std::size_t order = GetParam();
  const double got = gauss_legendre([](double x) { return std::exp(x); }, 0.0, 1.0, order);
  const double expected = std::exp(1.0) - 1.0;
  const double tol = order >= 4 ? 1e-8 : (order >= 2 ? 1e-3 : 0.1);
  EXPECT_NEAR(got, expected, tol);
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussConvergence, ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Gauss, ReversedIntervalFlipsSign) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(gauss_legendre(f, 0.0, 2.0, 3), -gauss_legendre(f, 2.0, 0.0, 3), 1e-12);
}

}  // namespace
}  // namespace emi::num
