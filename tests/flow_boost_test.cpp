#include <gtest/gtest.h>

#include <cmath>

#include "src/flow/design_flow.hpp"
#include "src/numeric/stats.hpp"
#include "src/place/drc.hpp"

namespace emi::flow {
namespace {

TEST(BoostConverter, InventoryConsistent) {
  const ConverterModel bc = make_boost_converter();
  EXPECT_EQ(bc.models.size(), 6u);
  EXPECT_EQ(bc.inductor_model.size(), 6u);
  EXPECT_EQ(bc.board.components().size(), 6u);
  for (const auto& [lname, mi] : bc.inductor_model) {
    EXPECT_NO_THROW(bc.circuit.inductor_index(lname));
    EXPECT_TRUE(bc.board.find_component(bc.models[mi].name).has_value());
  }
  // Boost duty: noise trapezoid rides to Vout = 24 V.
  EXPECT_DOUBLE_EQ(bc.noise.amplitude, 24.0);
}

TEST(BoostConverter, LayoutsGeometricallyLegal) {
  const ConverterModel bc = make_boost_converter();
  for (const place::Layout& l :
       {boost_layout_unfavorable(bc), boost_layout_optimized(bc)}) {
    const place::DrcReport r = place::DrcEngine(bc.board).check(l);
    EXPECT_EQ(r.count(place::ViolationKind::kOverlap), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kOutsideArea), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kUnplaced), 0u);
    EXPECT_EQ(r.count(place::ViolationKind::kGroupSplit), 0u);
  }
}

TEST(BoostConverter, BoostInductorCouplingReactsToPlacement) {
  // The boost inductor is this topology's characteristic aggressor: parked
  // next to the filter choke (unfavorable layout) it couples measurably;
  // moved to the far corner with a perpendicular axis the coupling falls
  // severalfold.
  const ConverterModel bc = make_boost_converter();
  const peec::CouplingExtractor ex;
  const auto k_of = [&](const place::Layout& l, const char* comp_a,
                        const char* comp_b) {
    const peec::PlacedModel pa{bc.model_for_component(comp_a),
                               pose_of(bc, l, comp_a)};
    const peec::PlacedModel pb{bc.model_for_component(comp_b),
                               pose_of(bc, l, comp_b)};
    return std::fabs(ex.coupling_factor(pa, pb));
  };
  const place::Layout bad = boost_layout_unfavorable(bc);
  const place::Layout good = boost_layout_optimized(bc);
  const double k_bad = k_of(bad, "LBOOST", "LF");
  const double k_good = k_of(good, "LBOOST", "LF");
  EXPECT_GT(k_bad, 3e-4);
  EXPECT_GT(k_bad / std::max(k_good, 1e-9), 3.0);
}

TEST(BoostConverter, PlacementImprovesEmissions) {
  const ConverterModel bc = make_boost_converter();
  const peec::CouplingExtractor ex;
  emc::EmissionSweepOptions sweep;
  sweep.n_points = 60;
  const emc::EmissionSpectrum bad = emc::conducted_emission(
      circuit_with_couplings(bc, boost_layout_unfavorable(bc), ex), bc.meas_node,
      bc.noise, sweep);
  const emc::EmissionSpectrum good = emc::conducted_emission(
      circuit_with_couplings(bc, boost_layout_optimized(bc), ex), bc.meas_node,
      bc.noise, sweep);
  double best = 0.0;
  for (std::size_t i = 0; i < bad.level_dbuv.size(); ++i) {
    best = std::max(best, bad.level_dbuv[i] - good.level_dbuv[i]);
  }
  EXPECT_GT(best, 2.0);  // smaller than the buck: the boost input is
  // inherently quiet (continuous inductor current), so placement buys fewer
  // dB here - the topology dependence is itself the point of the test.
}

TEST(BoostConverter, FullDesignFlowRuns) {
  ConverterModel bc = make_boost_converter();
  FlowOptions opt;
  opt.sweep.n_points = 40;
  const FlowResult res = run_design_flow(bc, boost_layout_unfavorable(bc), opt);
  EXPECT_FALSE(res.simulated_pairs.empty());
  EXPECT_FALSE(res.rules.empty());
  EXPECT_EQ(res.place_stats.failed, 0u);
  EXPECT_TRUE(res.drc_improved.clean());
  // Coupled prediction correlates with the synthetic measurement.
  const emc::EmissionSpectrum meas = emc::pseudo_measure(res.initial_prediction);
  EXPECT_GT(num::pearson(res.initial_prediction.level_dbuv, meas.level_dbuv), 0.9);
}

}  // namespace
}  // namespace emi::flow
