// Shared scaffolding for the repo lints (unit_lint, det_lint): comment/string
// stripping, the `path:token` allowlist format, and the stale-entry check.
//
// Allowlist format: one entry per line, `path:token` (path relative to the
// scanned root, forward slashes); `#` starts a comment. An entry matches
// every violation of that token in that file. Entries that match nothing are
// *stale* and fail the lint - exemptions retire with the code they excuse.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace lint {

struct Violation {
  std::string file;  // relative path
  std::size_t line;
  std::string token;
  std::string why;  // one-line rule explanation for the report
};

// Strip // and /* */ comments plus string literals so commented-out code and
// doc text never trigger a lint. Newlines are preserved for line numbers.
inline std::string strip_comments(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class St { kCode, kLine, kBlock, kString, kChar } st = St::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          st = St::kString;
          out.push_back(' ');
        } else if (c == '\'') {
          st = St::kChar;
          out.push_back(' ');
        } else {
          out.push_back(c);
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
          out.push_back('\n');
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

inline std::string read_file(const std::filesystem::path& file) {
  std::ifstream in(file);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

inline std::set<std::string> load_allowlist(const std::filesystem::path& file) {
  std::set<std::string> allow;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    allow.insert(line.substr(b, e - b + 1));
  }
  return allow;
}

// Filter `violations` against the allowlist, report survivors with
// `report_fmt` (printf format taking file, line, token, why, file, token),
// then report stale entries. Returns the lint's exit code.
inline int finish_scan(const std::vector<Violation>& violations,
                       const std::filesystem::path& allowlist_file,
                       const char* tool, const char* report_fmt,
                       std::size_t files_scanned) {
  const std::set<std::string> allow = load_allowlist(allowlist_file);
  std::set<std::string> used;
  std::vector<Violation> real;
  for (const Violation& v : violations) {
    const std::string key = v.file + ":" + v.token;
    if (allow.count(key) != 0) {
      used.insert(key);
    } else {
      real.push_back(v);
    }
  }
  for (const Violation& v : real) {
    std::fprintf(stderr, report_fmt, v.file.c_str(), v.line, v.token.c_str(),
                 v.why.c_str(), v.file.c_str(), v.token.c_str());
  }
  // Stale allowlist entries rot silently; flag them so fixes retire their
  // exemptions.
  int stale = 0;
  for (const std::string& key : allow) {
    if (used.count(key) == 0) {
      std::fprintf(stderr, "allowlist entry '%s' matches nothing (stale)\n",
                   key.c_str());
      ++stale;
    }
  }
  if (!real.empty() || stale != 0) return 1;
  std::printf("%s: %zu files clean (%zu allowlisted findings)\n", tool,
              files_scanned, used.size());
  return 0;
}

}  // namespace lint
