#!/usr/bin/env bash
# One-shot static-analysis gate: builds the tree under clang with the
# thread-safety analysis enforced (EMI_THREAD_SAFETY=ON), then runs the
# `analysis` ctest label (unit_lint + det_lint + negative-compile batteries).
#
#   tools/check_analysis.sh [build-dir]        default build dir: build-analysis
#
# Exits 0 when everything passes, non-zero on any finding. When no clang++ is
# on PATH the thread-safety build is impossible; the script then runs the
# compiler-independent `analysis` tests from the existing default build (if
# present) and exits 0 with a SKIP notice for the clang half, so the gate
# stays usable on gcc-only machines.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-analysis"}"

clangxx=""
for c in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
  if command -v "$c" >/dev/null 2>&1; then
    clangxx="$c"
    break
  fi
done

if [[ -z "$clangxx" ]]; then
  echo "check_analysis: SKIP thread-safety build (no clang++ on PATH)"
  if [[ -d "${repo_root}/build" ]]; then
    echo "check_analysis: running 'analysis' label from existing ${repo_root}/build"
    ctest --test-dir "${repo_root}/build" -L analysis --output-on-failure
  else
    echo "check_analysis: no default build dir either; nothing to run"
  fi
  exit 0
fi

echo "check_analysis: configuring ${build_dir} with ${clangxx} + EMI_THREAD_SAFETY=ON"
cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_CXX_COMPILER="$clangxx" \
      -DEMI_THREAD_SAFETY=ON >/dev/null

# Full build: -Werror=thread-safety makes every annotation violation a build
# failure, so compiling the whole tree IS the thread-safety check.
cmake --build "$build_dir" -j "$(nproc)"

echo "check_analysis: running 'analysis' ctest label"
ctest --test-dir "$build_dir" -L analysis --output-on-failure

echo "check_analysis: all green"
