// det_lint: repo-specific determinism lint. The whole pipeline promises
// bit-identical results at any thread count, executor count and platform
// (DESIGN.md §6/§11); that contract dies quietly when code reaches for an
// ambient source of nondeterminism. This lint scans src/ (.hpp and .cpp,
// comments and strings stripped) for the three hazard classes that have
// actually bitten similar codebases:
//
//   1. nondeterministic-source calls: std::rand/srand, std::random_device,
//      time(), clock(), std::chrono::system_clock. (steady_clock is fine -
//      it feeds Deadline/Profile, which affect *when*, never *what*.)
//   2. iteration over std::unordered_map/unordered_set: hash-order is a
//      library detail, so any range-for / .begin() walk over one can feed
//      accumulation order or output order. Safe uses (results sorted
//      immediately after collection) carry a reasoned allowlist entry.
//   3. pointer-value ordering: std::hash/std::less over pointer types and
//      reinterpret_cast to uintptr_t order results by allocation addresses,
//      which vary run to run under ASLR.
//
// Usage:
//   det_lint <root-dir> <allowlist-file>   scan all .hpp/.cpp under root
//   det_lint --selftest <fixture>          exit 0 iff the fixture DOES
//                                          produce violations of all three
//                                          classes (guards the lint itself)
//
// Allowlist: `path:token` entries with a `#` reason, shared format with
// unit_lint (tools/lint_common.hpp); stale entries fail.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint_common.hpp"

namespace {

namespace fs = std::filesystem;

struct BannedCall {
  const char* pattern;  // applied per line of comment-stripped text
  const char* token;
  const char* why;
};

// `[^\w:.>]` guards reject qualified/member lookalikes: steady_clock::now,
// deadline.time_left(), obj->clock() never match.
const BannedCall kBanned[] = {
    {R"((?:^|[^\w:])(?:std::)?rand\s*\()", "rand",
     "std::rand draws from hidden global state"},
    {R"((?:^|[^\w:])(?:std::)?srand\s*\()", "srand",
     "seeding the global RNG is ambient state"},
    {R"(\brandom_device\b)", "random_device",
     "std::random_device is nondeterministic by design; use numeric/rng.hpp"},
    {R"((?:^|[^\w:.>])time\s*\()", "time",
     "wall-clock time changes run to run"},
    {R"((?:^|[^\w:.>])clock\s*\()", "clock",
     "CPU clock readings change run to run"},
    {R"(\bsystem_clock\b)", "system_clock",
     "system_clock is wall time; use steady_clock for durations"},
};

struct PointerOrder {
  const char* pattern;
  const char* token;
};

const PointerOrder kPointerOrder[] = {
    {R"(std::hash\s*<[^<>]*\*\s*>)", "hash_pointer"},
    {R"(std::less\s*<[^<>]*\*\s*>)", "less_pointer"},
    {R"(reinterpret_cast\s*<\s*(?:std::)?u?intptr_t)", "uintptr_cast"},
};

// Identifiers declared with an unordered container type anywhere in the
// file (members, locals, parameters; declarations may span lines).
std::set<std::string> unordered_names(const std::string& text) {
  std::set<std::string> names;
  static const std::regex decl(
      R"(unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

void scan_file(const fs::path& file, const std::string& rel,
               std::vector<lint::Violation>& out) {
  const std::string text = lint::strip_comments(lint::read_file(file));
  std::set<std::string> unordered = unordered_names(text);
  // Members are declared in the header but iterated in the source: fold the
  // sibling .hpp's unordered names into a .cpp scan so `for (x : member_)`
  // is still seen. (Not a symbol table - same-stem pairing covers the repo's
  // layout, where every foo.cpp implements foo.hpp.)
  if (file.extension() == ".cpp") {
    fs::path sibling = file;
    sibling.replace_extension(".hpp");
    if (fs::exists(sibling)) {
      unordered.merge(
          unordered_names(lint::strip_comments(lint::read_file(sibling))));
    }
  }

  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);

    for (const BannedCall& b : kBanned) {
      if (std::regex_search(line, std::regex(b.pattern))) {
        out.push_back({rel, line_no, b.token, b.why});
      }
    }
    for (const PointerOrder& p : kPointerOrder) {
      if (std::regex_search(line, std::regex(p.pattern))) {
        out.push_back({rel, line_no, p.token,
                       "pointer values order by allocation address"});
      }
    }
    // Range-for or iterator walk over an unordered container declared in
    // this file: hash order may feed accumulation / output order.
    for (const std::string& name : unordered) {
      const bool range_for = std::regex_search(
          line, std::regex(R"(for\s*\([^;)]*:\s*[^)]*\b)" + name + R"(\b)"));
      const bool iter_walk =
          line.find(name + ".begin()") != std::string::npos ||
          line.find(name + ".cbegin()") != std::string::npos;
      if (range_for || iter_walk) {
        out.push_back({rel, line_no, name,
                       "iteration over unordered container '" + name +
                           "' is hash-ordered"});
      }
    }
    start = end + 1;
    ++line_no;
  }
}

int scan_tree(const fs::path& root, const fs::path& allowlist_file) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<lint::Violation> violations;
  for (const fs::path& f : files) {
    scan_file(f, fs::relative(f, root).generic_string(), violations);
  }
  return lint::finish_scan(
      violations, allowlist_file, "det_lint",
      "%s:%zu: determinism hazard '%s' (%s); fix it or add '%s:%s' to the "
      "allowlist with a reason\n",
      files.size());
}

int selftest(const fs::path& fixture) {
  std::vector<lint::Violation> violations;
  scan_file(fixture, fixture.generic_string(), violations);
  // The fixture must trip every hazard class, or the lint has gone blind to
  // one of them.
  const bool has_banned = std::any_of(
      violations.begin(), violations.end(),
      [](const lint::Violation& v) { return v.token == "rand" || v.token == "random_device" || v.token == "time" || v.token == "system_clock"; });
  const bool has_unordered =
      std::any_of(violations.begin(), violations.end(),
                  [](const lint::Violation& v) { return v.why.find("hash-ordered") != std::string::npos; });
  const bool has_pointer =
      std::any_of(violations.begin(), violations.end(),
                  [](const lint::Violation& v) { return v.why.find("allocation address") != std::string::npos; });
  if (!has_banned || !has_unordered || !has_pointer) {
    std::fprintf(stderr,
                 "det_lint selftest FAILED: fixture %s missed a hazard class "
                 "(banned=%d unordered=%d pointer=%d) - the lint is blind\n",
                 fixture.generic_string().c_str(), has_banned ? 1 : 0,
                 has_unordered ? 1 : 0, has_pointer ? 1 : 0);
    return 1;
  }
  std::printf("det_lint selftest ok: fixture produced %zu violation(s) "
              "across all hazard classes\n",
              violations.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--selftest") {
    return selftest(argv[2]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: det_lint <root-dir> <allowlist-file>\n"
                 "       det_lint --selftest <fixture>\n");
    return 2;
  }
  return scan_tree(argv[1], argv[2]);
}
