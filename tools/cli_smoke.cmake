# Drive place -> drc -> route through the CLI, fail on any nonzero status.
set(LAYOUT ${CMAKE_CURRENT_BINARY_DIR}/smoke_layout.txt)
execute_process(COMMAND ${CLI} place ${DESIGN} -o ${LAYOUT} --compact --refine 500
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "emiplace place failed: ${rc}")
endif()
execute_process(COMMAND ${CLI} drc ${DESIGN} ${LAYOUT} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "emiplace drc failed: ${rc}")
endif()
execute_process(COMMAND ${CLI} route ${DESIGN} ${LAYOUT} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "emiplace route failed: ${rc}")
endif()

# --- Hardening: bad inputs must exit with the documented status (2 = usage /
# bad argument, 1 = parse or io failure) - never crash. A crash shows up as a
# non-numeric RESULT_VARIABLE ("Segmentation fault"), which fails the EQUAL.
function(expect_status expected)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR "expected exit ${expected}, got '${rc}' from: ${ARGN}\n${err}")
  endif()
endfunction()

# `version` exits 0 and names the binary version plus both on-disk format
# versions and the kernel fast-path compile flags.
execute_process(COMMAND ${CLI} version OUTPUT_VARIABLE ver RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "emiplace version failed: ${rc}")
endif()
foreach(needle "emiplace " "EMICKPT 1" "EMIJOB 1" "kernel isa clones")
  if(NOT ver MATCHES "${needle}")
    message(FATAL_ERROR "version output missing '${needle}':\n${ver}")
  endif()
endforeach()

expect_status(2 ${CLI} place ${DESIGN} --refine 12abc)
expect_status(2 ${CLI} place ${DESIGN} --refine -3)
expect_status(2 ${CLI} place ${DESIGN} --seed 99999999999999999999999)
expect_status(2 ${CLI} place ${DESIGN} --bogus-flag)
expect_status(2 ${CLI} svg ${DESIGN} ${LAYOUT} 9999)
expect_status(2 ${CLI} svg ${DESIGN} ${LAYOUT} zero)
expect_status(2 ${CLI} frobnicate ${DESIGN})

# Malformed design files come back as a structured parse diagnostic, exit 1.
set(BAD ${CMAKE_CURRENT_BINARY_DIR}/smoke_bad.design)
file(WRITE ${BAD} "boards 1\ncomponent C1 nan 4 2\n")
expect_status(1 ${CLI} info ${BAD})
file(WRITE ${BAD} "component C1 5\n")
expect_status(1 ${CLI} info ${BAD})
file(WRITE ${BAD} "boards 1000000\n")
expect_status(1 ${CLI} info ${BAD})
file(WRITE ${BAD} "boards 1\ncomponent C1 5 4 2 board=70000\n")
expect_status(1 ${CLI} info ${BAD})
expect_status(1 ${CLI} info ${CMAKE_CURRENT_BINARY_DIR}/definitely_missing.design)

# --- Flow subcommand: checkpoint after rule derivation (deterministic SIGKILL
# stand-in), resume, and check the resumed run's outputs are byte-identical to
# an uninterrupted run at the same settings.
set(CKPT ${CMAKE_CURRENT_BINARY_DIR}/smoke_flow.ckpt)
set(RESUMED ${CMAKE_CURRENT_BINARY_DIR}/smoke_resumed)
set(FRESH ${CMAKE_CURRENT_BINARY_DIR}/smoke_fresh)
file(REMOVE ${CKPT})
# Interrupted run exits 1 (partial result) but must not crash.
expect_status(1 ${CLI} flow buck --points 40 --checkpoint ${CKPT}
              --stop-after rule_derivation)
expect_status(0 ${CLI} flow buck --points 40 --checkpoint ${CKPT} --resume
              -o ${RESUMED})
expect_status(0 ${CLI} flow buck --points 40 -o ${FRESH})
foreach(part initial improved layout)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${RESUMED}_${part}.csv ${FRESH}_${part}.csv
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed flow ${part} output differs from fresh run")
  endif()
endforeach()

# Flow hardening: bad arguments are usage errors, corrupt checkpoints are
# structured rejections (exit 1), never crashes.
expect_status(2 ${CLI} flow teapot)
expect_status(2 ${CLI} flow buck --stop-after frobnication)
expect_status(2 ${CLI} flow buck --points 1)
expect_status(2 ${CLI} flow buck --resume)
expect_status(2 ${CLI} --fault-inject bogus flow buck)
expect_status(2 ${CLI} --fault-inject pool:notarate:1 flow buck)
expect_status(2 ${CLI} --fault-inject "pool:0.1:1,junk" flow buck)
file(WRITE ${CKPT}.corrupt "EMICKPT 1 0000000000000000\ngarbage\n")
expect_status(1 ${CLI} flow buck --points 40 --checkpoint ${CKPT}.corrupt --resume)
expect_status(1 ${CLI} flow buck --points 40
              --checkpoint ${CMAKE_CURRENT_BINARY_DIR}/missing.ckpt --resume)

# Serve/client hardening: missing required flags are usage errors (exit 2),
# an unreachable daemon is a connection failure (exit 1), never a crash.
expect_status(2 ${CLI} serve)
expect_status(2 ${CLI} serve --socket /tmp/smoke_unused.sock)
expect_status(2 ${CLI} serve --socket /tmp/smoke_unused.sock --state-dir d --executors 0)
expect_status(2 ${CLI} submit)
expect_status(2 ${CLI} submit --socket /tmp/smoke_unused.sock teapot)
expect_status(2 ${CLI} status --socket /tmp/smoke_unused.sock)
expect_status(2 ${CLI} result --socket /tmp/smoke_unused.sock --job 1x)
expect_status(2 ${CLI} stats)
expect_status(1 ${CLI} stats --socket ${CMAKE_CURRENT_BINARY_DIR}/no_daemon.sock)
