// Shared command-line flag parsing for the emiplace subcommands.
//
// Every subcommand used to hand-roll the same strtoull loop for its
// `--budget-ms`-style flags; this hoists that into one Status-returning
// FlagSet. Register the flags a subcommand accepts, call parse(), and map a
// failed Status to the usage exit (2). Parsing is strict: the whole token
// must be a number in range ("12abc" and wrapped negatives are errors, not
// prefixes), unknown options and missing values are kInvalidArgument with a
// message naming the offending token.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/core/status.hpp"

namespace emi::cli {

// Strict unsigned parse of a whole token. std::stoul would happily accept
// "12abc" or wrap negatives.
inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

class FlagSet {
 public:
  // --name <V>: unsigned integer, range-checked inclusively.
  void add_u64(std::string name, std::uint64_t* out, std::uint64_t min_v = 0,
               std::uint64_t max_v = std::numeric_limits<std::uint64_t>::max()) {
    flags_.push_back({std::move(name), Kind::kU64, out, nullptr, nullptr, nullptr,
                      min_v, max_v, {}, {}});
  }

  // --name <V>: non-negative count stored as std::size_t.
  void add_size(std::string name, std::size_t* out, std::uint64_t min_v = 0,
                std::uint64_t max_v = std::numeric_limits<std::uint64_t>::max()) {
    flags_.push_back({std::move(name), Kind::kSize, nullptr, out, nullptr, nullptr,
                      min_v, max_v, {}, {}});
  }

  // --name <MS>: non-negative millisecond budget stored as std::int64_t
  // (0 = unlimited, matching Deadline semantics).
  void add_ms(std::string name, std::int64_t* out) {
    flags_.push_back({std::move(name), Kind::kMs, nullptr, nullptr, out, nullptr,
                      0, static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
                      {}, {}});
  }

  // --name <V>: free-form string.
  void add_string(std::string name, std::string* out) {
    flags_.push_back({std::move(name), Kind::kString, nullptr, nullptr, nullptr,
                      nullptr, 0, 0, {}, {}, out});
  }

  // --name <V>: string accepted only when `check(V)` holds; `what` names the
  // domain in the error ("unknown <what>: V").
  void add_checked(std::string name, std::string* out,
                   std::function<bool(const std::string&)> check, std::string what) {
    flags_.push_back({std::move(name), Kind::kChecked, nullptr, nullptr, nullptr,
                      nullptr, 0, 0, std::move(check), std::move(what), out});
  }

  // --name: boolean switch, no value.
  void add_switch(std::string name, bool* out) {
    flags_.push_back({std::move(name), Kind::kSwitch, nullptr, nullptr, nullptr, out,
                      0, 0, {}, {}});
  }

  // Handler for non-flag tokens, called with the positional's ordinal (0, 1,
  // ...) in argv order. Without one, any non-flag token is an error.
  void positional(std::function<core::Status(std::size_t, const std::string&)> fn) {
    positional_ = std::move(fn);
  }

  core::Status parse(int argc, char** argv) const {
    std::size_t ordinal = 0;
    for (int i = 0; i < argc; ++i) {
      const std::string tok = argv[i];
      const Flag* flag = nullptr;
      for (const Flag& f : flags_) {
        if (f.name == tok) {
          flag = &f;
          break;
        }
      }
      if (flag == nullptr) {
        if (!tok.empty() && tok[0] == '-') return err("unknown option: " + tok);
        if (!positional_) return err("unexpected argument: " + tok);
        if (core::Status st = positional_(ordinal++, tok); !st.ok()) return st;
        continue;
      }
      if (flag->kind == Kind::kSwitch) {
        *flag->out_switch = true;
        continue;
      }
      if (i + 1 >= argc) return err("missing value for " + flag->name);
      const char* val = argv[++i];
      switch (flag->kind) {
        case Kind::kU64:
        case Kind::kSize:
        case Kind::kMs: {
          std::uint64_t v = 0;
          if (!parse_u64(val, v) || v < flag->min_v || v > flag->max_v) {
            return err("invalid " + flag->name + " value: " + val);
          }
          if (flag->kind == Kind::kU64) *flag->out_u64 = v;
          if (flag->kind == Kind::kSize) *flag->out_size = static_cast<std::size_t>(v);
          if (flag->kind == Kind::kMs) *flag->out_ms = static_cast<std::int64_t>(v);
          break;
        }
        case Kind::kString:
          *flag->out_string = val;
          break;
        case Kind::kChecked:
          if (!flag->check(val)) {
            return err("unknown " + flag->what + ": " + val);
          }
          *flag->out_string = val;
          break;
        case Kind::kSwitch:
          break;  // handled above
      }
    }
    return core::Status();
  }

 private:
  enum class Kind { kU64, kSize, kMs, kString, kChecked, kSwitch };

  struct Flag {
    std::string name;
    Kind kind;
    std::uint64_t* out_u64 = nullptr;
    std::size_t* out_size = nullptr;
    std::int64_t* out_ms = nullptr;
    bool* out_switch = nullptr;
    std::uint64_t min_v = 0;
    std::uint64_t max_v = 0;
    std::function<bool(const std::string&)> check;
    std::string what;
    std::string* out_string = nullptr;
  };

  static core::Status err(const std::string& msg) {
    return core::Status(core::ErrorCode::kInvalidArgument, "cli", msg);
  }

  std::vector<Flag> flags_;
  std::function<core::Status(std::size_t, const std::string&)> positional_;
};

}  // namespace emi::cli
