// emiplace - command-line front end to the placement tool.
//
// Subcommands:
//   info  <design>                      print design statistics
//   place <design> [-o layout] [--compact] [--refine N] [--seed S]
//                                       run the automatic three-step flow
//   drc   <design> [layout]             check a design (+ saved layout)
//   route <design> <layout>             route nets, print trace table
//   svg   <design> <layout> [board] [-o file]
//                                       render a board to SVG
//   flow  [buck|boost] [--points N] [--adaptive] [--budget-ms MS]
//         [--stage-budget-ms MS] [--checkpoint FILE] [--resume]
//         [--stop-after STAGE] [-o PREFIX]
//                                       run the paper's end-to-end EMI flow
//                                       on a built-in converter
//   serve --socket PATH --state-dir DIR [--executors N] [--queue-capacity N]
//         [--lease-ms MS] [--max-attempts N]
//                                       run the flow as a job-queue daemon
//   submit|status|result|cancel|stats|health|shutdown --socket PATH ...
//                                       client verbs against a running serve;
//                                       submit --retry N backs off politely
//                                       (deterministic seeded jitter) on
//                                       resource_exhausted sheds, honoring
//                                       the server's retry_after_ms hint;
//                                       shutdown --drain finishes in-flight
//                                       jobs and leaves the queue durable
//   version                             print binary + format versions
//
// Global option (any command): --fault-inject <site>:<rate>:<seed>[,...]
// arms the deterministic fault injector, same syntax as EMI_FAULT_INJECT.
//
// The design file format is the ASCII interface documented in
// src/io/design_format.hpp. With no -o, results go to stdout. File outputs
// are written atomically (tmp + rename), so an interrupted run never leaves
// a torn file behind.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/backoff.hpp"
#include "src/core/fault_injection.hpp"
#include "src/core/status.hpp"

#include "src/flow/checkpoint.hpp"
#include "src/flow/design_flow.hpp"
#include "src/io/atomic_writer.hpp"
#include "src/io/design_format.hpp"
#include "src/io/reports.hpp"
#include "src/io/svg.hpp"
#include "src/peec/sampled_path.hpp"
#include "src/place/compactor.hpp"
#include "src/place/drc.hpp"
#include "src/place/metrics.hpp"
#include "src/place/placer.hpp"
#include "src/place/refine.hpp"
#include "src/place/route.hpp"
#include "src/svc/job.hpp"
#include "src/svc/server.hpp"
#include "src/svc/service.hpp"
#include "tools/cli_args.hpp"

#ifndef EMIPLACE_VERSION
#define EMIPLACE_VERSION "dev"
#endif

namespace {

using namespace emi;

bool parse_board(const std::string& s, int& out) {
  std::uint64_t v = 0;
  if (!cli::parse_u64(s.c_str(), v) || v > 4095) return false;
  out = static_cast<int>(v);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: emiplace <command> [args]\n"
               "  info  <design>\n"
               "  place <design> [-o layout] [--compact] [--refine N] [--seed S]\n"
               "  drc   <design> [layout]\n"
               "  route <design> <layout>\n"
               "  svg   <design> <layout> [board] [-o file]\n"
               "  flow  [buck|boost] [--points N] [--adaptive] [--budget-ms MS]\n"
               "        [--stage-budget-ms MS] [--checkpoint FILE] [--resume]\n"
               "        [--stop-after STAGE] [-o PREFIX]\n"
               "  serve --socket PATH --state-dir DIR [--executors N]\n"
               "        [--queue-capacity N] [--lease-ms MS] [--max-attempts N]\n"
               "  submit --socket PATH [buck|boost] [--points N] [--adaptive]\n"
               "         [--budget-ms MS] [--stage-budget-ms MS] [--client NAME]\n"
               "         [--stop-after STAGE] [--poison] [--retry N]\n"
               "         [--retry-base-ms MS]\n"
               "  status|result|cancel --socket PATH --job N\n"
               "  stats|health --socket PATH\n"
               "  shutdown --socket PATH [--drain]\n"
               "  version\n"
               "global: --fault-inject <site>:<rate>:<seed>[,...]\n");
  return 2;
}

// Shared parse -> usage-exit mapping: every malformed flag is exit 2 with the
// parser's diagnostic on stderr.
bool parse_or_usage(const cli::FlagSet& flags, int argc, char** argv) {
  const core::Status st = flags.parse(argc, argv);
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.message().c_str());
  return st.ok();
}

// Load a design or exit 1 with the structured parse diagnostic (stage,
// error class and line number) on stderr.
io::LoadedDesign load_or_exit(const std::string& path) {
  core::Result<io::LoadedDesign> r = io::try_load_design_file(path);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

int cmd_info(const std::string& path) {
  const io::LoadedDesign ld = load_or_exit(path);
  const place::Design& d = ld.design;
  std::printf("design: %s\n", path.c_str());
  std::printf("  boards:      %d\n", d.board_count());
  std::printf("  components:  %zu\n", d.components().size());
  std::printf("  nets:        %zu\n", d.nets().size());
  std::printf("  areas:       %zu\n", d.areas().size());
  std::printf("  keepouts:    %zu\n", d.keepouts().size());
  std::printf("  EMD rules:   %zu\n", d.emd_rules().size());
  std::printf("  groups:      %zu\n", d.groups().size());
  std::printf("  clearance:   %.2f mm\n", d.clearance().raw());
  std::size_t preplaced = 0;
  for (const auto& p : ld.layout.placements) preplaced += p.placed ? 1 : 0;
  std::printf("  preplaced:   %zu\n", preplaced);
  return 0;
}

int cmd_version() {
  std::printf("emiplace %s\n", EMIPLACE_VERSION);
  std::printf("checkpoint format: %.*s\n",
              static_cast<int>(flow::kCheckpointMagic.size()),
              flow::kCheckpointMagic.data());
  std::printf("job state format:  %.*s\n", static_cast<int>(svc::kJobMagic.size()),
              svc::kJobMagic.data());
  std::printf("kernel isa clones: %s\n",
              peec::kernel_clones_enabled() ? "default,avx2,avx512f" : "off");
  return 0;
}

int cmd_place(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string design_path = argv[0];
  std::string out_path;
  bool compact = false;
  std::uint64_t refine_iters = 0;
  std::uint64_t seed = 1;
  cli::FlagSet flags;
  flags.add_string("-o", &out_path);
  flags.add_switch("--compact", &compact);
  flags.add_u64("--refine", &refine_iters);
  flags.add_u64("--seed", &seed);
  if (!parse_or_usage(flags, argc - 1, argv + 1)) return usage();

  io::LoadedDesign ld = load_or_exit(design_path);
  const place::PlaceStats stats = place::auto_place(ld.design, ld.layout);
  std::fprintf(stderr, "placed %zu, failed %zu in %.1f ms\n", stats.placed,
               stats.failed, stats.elapsed_seconds * 1e3);
  for (const std::string& f : stats.failed_components) {
    std::fprintf(stderr, "  FAILED: %s\n", f.c_str());
  }
  if (compact) {
    const place::CompactionResult c = place::compact_layout(ld.design, ld.layout);
    std::fprintf(stderr, "compacted: area %.0f -> %.0f mm^2\n", c.area_before_mm2,
                 c.area_after_mm2);
  }
  if (refine_iters > 0) {
    place::RefineOptions ropt;
    ropt.iterations = static_cast<std::size_t>(refine_iters);
    ropt.seed = seed;
    const place::RefineResult r = place::refine_layout(ld.design, ld.layout, ropt);
    std::fprintf(stderr, "refined: cost %.1f -> %.1f\n", r.cost_before, r.cost_after);
  }
  const place::DrcReport rep = place::DrcEngine(ld.design).check(ld.layout);
  std::fprintf(stderr, "DRC: %s (%zu violations)\n",
               rep.clean() ? "CLEAN" : "VIOLATIONS", rep.violations.size());

  if (out_path.empty()) {
    io::save_layout(std::cout, ld.design, ld.layout);
  } else {
    const core::Status st = io::write_file_atomic(
        out_path, [&](std::ostream& o) { io::save_layout(o, ld.design, ld.layout); });
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "layout written to %s\n", out_path.c_str());
  }
  return stats.failed == 0 && rep.clean() ? 0 : 1;
}

int cmd_drc(int argc, char** argv) {
  if (argc < 1) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  place::Layout layout = ld.layout;
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    layout = io::load_layout(in, ld.design);
  }
  const place::DrcReport rep = place::DrcEngine(ld.design).check(layout);
  io::write_drc_report(std::cout, rep);
  return rep.clean() ? 0 : 1;
}

int cmd_route(int argc, char** argv) {
  if (argc < 2) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  const place::Layout layout = io::load_layout(in, ld.design);
  const auto routed = place::route_nets(ld.design, layout);
  std::printf("net,length_mm,segments\n");
  for (const auto& rn : routed) {
    std::printf("%s,%.1f,%zu\n", rn.net.c_str(), rn.total_length_mm,
                rn.segments.size());
  }
  std::printf("# total %.1f mm\n", place::total_trace_length(routed));
  return 0;
}

int cmd_svg(int argc, char** argv) {
  if (argc < 2) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  const place::Layout layout = io::load_layout(in, ld.design);
  io::SvgOptions opt;
  std::string out_path;
  cli::FlagSet flags;
  flags.add_string("-o", &out_path);
  flags.positional([&](std::size_t idx, const std::string& v) {
    if (idx > 0 || !parse_board(v, opt.board)) {
      return core::Status(core::ErrorCode::kInvalidArgument, "cli",
                          "invalid board index or option: " + v);
    }
    return core::Status();
  });
  if (!parse_or_usage(flags, argc - 2, argv + 2)) return usage();
  if (out_path.empty()) {
    io::write_layout_svg(std::cout, ld.design, layout, opt);
  } else {
    const core::Status st = io::write_layout_svg_file(out_path, ld.design, layout, opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
  }
  return 0;
}

bool valid_topology(const std::string& s) { return s == "buck" || s == "boost"; }

bool valid_stage(const std::string& s) {
  return flow::flow_stage_from_name(s).has_value();
}

int cmd_flow(int argc, char** argv) {
  std::string topology = "buck";
  flow::FlowOptions fopt;
  fopt.sweep.n_points = 60;  // CLI default: quick sweeps
  std::string out_prefix;
  bool resume = false;
  bool adaptive = false;
  cli::FlagSet flags;
  flags.add_size("--points", &fopt.sweep.n_points, 2, 100000);
  flags.add_switch("--adaptive", &adaptive);
  flags.add_ms("--budget-ms", &fopt.total_budget_ms);
  flags.add_ms("--stage-budget-ms", &fopt.stage_budget_ms);
  flags.add_string("--checkpoint", &fopt.checkpoint_path);
  flags.add_switch("--resume", &resume);
  flags.add_checked("--stop-after", &fopt.stop_after_stage, valid_stage,
                    "--stop-after stage");
  flags.add_string("-o", &out_prefix);
  flags.positional([&](std::size_t idx, const std::string& v) {
    if (idx > 0 || !valid_topology(v)) {
      return core::Status(core::ErrorCode::kInvalidArgument, "cli",
                          "unknown topology: " + v);
    }
    topology = v;
    return core::Status();
  });
  if (!parse_or_usage(flags, argc, argv)) return usage();
  if (resume && fopt.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return usage();
  }
  if (adaptive) {
    // Both sweep-acceleration engines at default tolerances; defaults stay
    // exact so unflagged runs remain bit-identical to older builds.
    fopt.sweep_accel.adaptive = true;
    fopt.sweep_accel.surrogate = true;
  }

  flow::BuckConverter bc =
      topology == "buck" ? flow::make_buck_converter() : flow::make_boost_converter();
  const place::Layout initial = topology == "buck"
                                    ? flow::layout_unfavorable(bc)
                                    : flow::boost_layout_unfavorable(bc);
  const flow::FlowResult res = resume ? flow::resume_design_flow(bc, initial, fopt)
                                      : flow::run_design_flow(bc, initial, fopt);

  std::fprintf(stderr, "flow(%s): %zu pairs ranked, %zu simulated, %zu solves saved\n",
               topology.c_str(), res.ranking.size(), res.simulated_pairs.size(),
               res.field_solves_saved);
  for (const flow::StageDiagnostic& d : res.diagnostics) {
    std::fprintf(stderr, "  [%s] attempts=%d %s: %s\n",
                 d.recovered ? "recovered" : "failed", d.attempts, d.stage.c_str(),
                 d.status.to_string().c_str());
  }
  std::fprintf(stderr, "complete: %s  rules: %zu  peak improvement: %.2f dB\n",
               res.complete ? "yes" : "no", res.rules.size(),
               res.peak_improvement_db);

  if (!out_prefix.empty()) {
    // The improved spectrum/layout only exist for a completed flow; a partial
    // run (expired budget, --stop-after) still gets the initial prediction.
    std::vector<std::pair<std::string, core::Status>> outs;
    outs.emplace_back(out_prefix + "_initial.csv",
                      io::write_spectrum_csv_file(out_prefix + "_initial.csv",
                                                  res.initial_prediction,
                                                  fopt.cispr_class));
    if (res.complete) {
      outs.emplace_back(out_prefix + "_improved.csv",
                        io::write_spectrum_csv_file(out_prefix + "_improved.csv",
                                                    res.improved_prediction,
                                                    fopt.cispr_class));
      outs.emplace_back(out_prefix + "_layout.csv",
                        io::write_layout_table_file(out_prefix + "_layout.csv",
                                                    bc.board, res.improved_layout));
    }
    for (const auto& o : outs) {
      if (!o.second.ok()) {
        std::fprintf(stderr, "%s\n", o.second.to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", o.first.c_str());
    }
  }
  return res.complete ? 0 : 1;
}

// --- serve daemon ----------------------------------------------------------

svc::SocketServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // atomic store: signal-safe
}

int cmd_serve(int argc, char** argv) {
  std::string socket_path;
  std::string state_dir;
  svc::ServiceOptions sopt;
  cli::FlagSet flags;
  flags.add_string("--socket", &socket_path);
  flags.add_string("--state-dir", &state_dir);
  std::uint64_t max_attempts = 0;
  flags.add_size("--executors", &sopt.executors, 1, 64);
  flags.add_size("--queue-capacity", &sopt.queue_capacity, 1, 65536);
  flags.add_ms("--lease-ms", &sopt.lease_ms);
  flags.add_u64("--max-attempts", &max_attempts, 1, 1000);
  if (!parse_or_usage(flags, argc, argv)) return usage();
  if (socket_path.empty() || state_dir.empty()) {
    std::fprintf(stderr, "serve requires --socket and --state-dir\n");
    return usage();
  }
  if (max_attempts != 0) sopt.max_attempts = static_cast<std::uint32_t>(max_attempts);
  sopt.state_dir = state_dir;

  try {
    svc::Service service(sopt);
    svc::SocketServer server(service, socket_path);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::fprintf(stderr, "emiplace serve: socket %s, state %s, %zu executor(s)\n",
                 socket_path.c_str(), state_dir.c_str(), sopt.executors);
    const core::Status st = server.serve();
    g_server = nullptr;
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// --- client verbs -----------------------------------------------------------

// One request line against a running serve: connect, send, print the single
// reply line. Exit 0 on an OK reply, 1 on ERR or a connection failure. When
// `reply_out` is set, the reply line (without newline) is also stored there
// so callers (submit --retry) can inspect error codes and hints.
int client_roundtrip(const std::string& socket_path, const std::string& line,
                     std::string* reply_out = nullptr) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "invalid --socket path: %s\n", socket_path.c_str());
    return usage();
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "connect %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  const std::string req = line + "\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      std::fprintf(stderr, "send: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t nl = reply.find('\n');
  if (nl == std::string::npos) {
    std::fprintf(stderr, "connection closed before reply\n");
    return 1;
  }
  reply.resize(nl);
  std::printf("%s\n", reply.c_str());
  if (reply_out != nullptr) *reply_out = reply;
  return reply.rfind("OK", 0) == 0 ? 0 : 1;
}

// Pull a ` key=<u64>` token out of a reply line; false when absent. Used for
// the retry_after_ms hint riding in shed ERR messages.
bool reply_u64_token(const std::string& reply, const std::string& key,
                     std::uint64_t& out) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while ((pos = reply.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || reply[pos - 1] == ' ') {
      const std::size_t val = pos + needle.size();
      std::size_t end = val;
      while (end < reply.size() && reply[end] != ' ') ++end;
      return cli::parse_u64(reply.substr(val, end - val).c_str(), out);
    }
    pos += needle.size();
  }
  return false;
}

int cmd_submit(int argc, char** argv) {
  std::string socket_path;
  std::string topology = "buck";
  std::string client;
  std::string stop_after;
  std::uint64_t points = 0;
  std::int64_t budget_ms = -1;
  std::int64_t stage_budget_ms = -1;
  std::uint64_t retries = 0;
  std::int64_t retry_base_ms = 100;
  bool poison = false;
  bool adaptive = false;
  cli::FlagSet flags;
  flags.add_string("--socket", &socket_path);
  flags.add_u64("--points", &points, 2, 100000);
  flags.add_switch("--adaptive", &adaptive);
  flags.add_ms("--budget-ms", &budget_ms);
  flags.add_ms("--stage-budget-ms", &stage_budget_ms);
  flags.add_string("--client", &client);
  flags.add_checked("--stop-after", &stop_after, valid_stage, "--stop-after stage");
  flags.add_switch("--poison", &poison);
  flags.add_u64("--retry", &retries, 0, 100);
  flags.add_ms("--retry-base-ms", &retry_base_ms);
  flags.positional([&](std::size_t idx, const std::string& v) {
    if (idx > 0 || !valid_topology(v)) {
      return core::Status(core::ErrorCode::kInvalidArgument, "cli",
                          "unknown topology: " + v);
    }
    topology = v;
    return core::Status();
  });
  if (!parse_or_usage(flags, argc, argv)) return usage();
  if (socket_path.empty()) {
    std::fprintf(stderr, "submit requires --socket\n");
    return usage();
  }
  std::string line = "SUBMIT topology=" + topology;
  if (points != 0) line += " points=" + std::to_string(points);
  if (budget_ms >= 0) line += " budget_ms=" + std::to_string(budget_ms);
  if (stage_budget_ms >= 0) {
    line += " stage_budget_ms=" + std::to_string(stage_budget_ms);
  }
  if (!client.empty()) line += " client=" + client;
  if (adaptive) line += " adaptive=1";
  if (!stop_after.empty()) line += " stop_after=" + stop_after;
  if (poison) line += " poison=1";

  // Polite retry against overload sheds only: other errors (validation,
  // io) are not transient and fail immediately. The wait before retry k is
  // max(server hint, deterministic seeded backoff) - the hint spaces the
  // herd by load, the seed (from the request bytes) de-synchronizes clients
  // that submitted identical lines, and det_lint-visible randomness is
  // never involved.
  const core::Backoff backoff({retry_base_ms, retry_base_ms * 16, 2.0, 0.5},
                              core::fault::fnv64(line));
  for (std::uint64_t attempt = 0;; ++attempt) {
    std::string reply;
    const int rc = client_roundtrip(socket_path, line, &reply);
    if (rc == 0 || attempt >= retries ||
        reply.find("code=resource_exhausted") == std::string::npos) {
      return rc;
    }
    std::uint64_t hint_ms = 0;
    (void)reply_u64_token(reply, "retry_after_ms", hint_ms);  // absent: hint 0
    const std::int64_t wait_ms =
        std::max<std::int64_t>(static_cast<std::int64_t>(hint_ms),
                               backoff.delay_ms(static_cast<int>(attempt)));
    std::fprintf(stderr, "shed; retrying in %lld ms (attempt %llu of %llu)\n",
                 static_cast<long long>(wait_ms),
                 static_cast<unsigned long long>(attempt + 1),
                 static_cast<unsigned long long>(retries));
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
}

// status/result/cancel share the same `--socket S --job N` shape.
int cmd_job_verb(const char* verb, int argc, char** argv) {
  std::string socket_path;
  std::uint64_t job = 0;
  cli::FlagSet flags;
  flags.add_string("--socket", &socket_path);
  flags.add_u64("--job", &job);
  if (!parse_or_usage(flags, argc, argv)) return usage();
  bool have_job = false;
  for (int i = 0; i < argc; ++i) have_job |= !std::strcmp(argv[i], "--job");
  if (socket_path.empty() || !have_job) {
    std::fprintf(stderr, "%s requires --socket and --job\n", verb);
    return usage();
  }
  return client_roundtrip(socket_path,
                          std::string(verb) + " job=" + std::to_string(job));
}

int cmd_plain_verb(const char* verb, int argc, char** argv) {
  std::string socket_path;
  cli::FlagSet flags;
  flags.add_string("--socket", &socket_path);
  if (!parse_or_usage(flags, argc, argv)) return usage();
  if (socket_path.empty()) {
    std::fprintf(stderr, "%s requires --socket\n", verb);
    return usage();
  }
  return client_roundtrip(socket_path, verb);
}

int cmd_shutdown(int argc, char** argv) {
  std::string socket_path;
  bool drain = false;
  cli::FlagSet flags;
  flags.add_string("--socket", &socket_path);
  flags.add_switch("--drain", &drain);
  if (!parse_or_usage(flags, argc, argv)) return usage();
  if (socket_path.empty()) {
    std::fprintf(stderr, "shutdown requires --socket\n");
    return usage();
  }
  return client_roundtrip(socket_path, drain ? "SHUTDOWN DRAIN" : "SHUTDOWN");
}

}  // namespace

int main(int argc, char** argv) {
  // Global --fault-inject: same spec syntax as EMI_FAULT_INJECT, validated
  // strictly - a malformed spec (any entry of a multi-entry list) is a usage
  // error, not a silently disarmed injector.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--fault-inject")) {
      if (i + 1 >= argc ||
          !core::FaultInjector::instance().configure_from_spec(argv[i + 1])) {
        std::fprintf(stderr, "invalid --fault-inject spec: %s\n",
                     i + 1 < argc ? argv[i + 1] : "(missing)");
        return usage();
      }
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "place") return cmd_place(argc - 2, argv + 2);
    if (cmd == "drc") return cmd_drc(argc - 2, argv + 2);
    if (cmd == "route") return cmd_route(argc - 2, argv + 2);
    if (cmd == "svg") return cmd_svg(argc - 2, argv + 2);
    if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "submit") return cmd_submit(argc - 2, argv + 2);
    if (cmd == "status") return cmd_job_verb("STATUS", argc - 2, argv + 2);
    if (cmd == "result") return cmd_job_verb("RESULT", argc - 2, argv + 2);
    if (cmd == "cancel") return cmd_job_verb("CANCEL", argc - 2, argv + 2);
    if (cmd == "stats") return cmd_plain_verb("STATS", argc - 2, argv + 2);
    if (cmd == "health") return cmd_plain_verb("HEALTH", argc - 2, argv + 2);
    if (cmd == "shutdown") return cmd_shutdown(argc - 2, argv + 2);
    if (cmd == "version") return cmd_version();
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
