// emiplace - command-line front end to the placement tool.
//
// Subcommands:
//   info  <design>                      print design statistics
//   place <design> [-o layout] [--compact] [--refine N] [--seed S]
//                                       run the automatic three-step flow
//   drc   <design> [layout]             check a design (+ saved layout)
//   route <design> <layout>             route nets, print trace table
//   svg   <design> <layout> [board] [-o file]
//                                       render a board to SVG
//   flow  [buck|boost] [--points N] [--budget-ms MS] [--stage-budget-ms MS]
//         [--checkpoint FILE] [--resume] [--stop-after STAGE] [-o PREFIX]
//                                       run the paper's end-to-end EMI flow
//                                       on a built-in converter
//
// Global option (any command): --fault-inject <site>:<rate>:<seed>[,...]
// arms the deterministic fault injector, same syntax as EMI_FAULT_INJECT.
//
// The design file format is the ASCII interface documented in
// src/io/design_format.hpp. With no -o, results go to stdout. File outputs
// are written atomically (tmp + rename), so an interrupted run never leaves
// a torn file behind.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/fault_injection.hpp"
#include "src/core/status.hpp"

#include "src/flow/checkpoint.hpp"
#include "src/flow/design_flow.hpp"
#include "src/io/atomic_writer.hpp"
#include "src/io/design_format.hpp"
#include "src/io/reports.hpp"
#include "src/io/svg.hpp"
#include "src/place/compactor.hpp"
#include "src/place/drc.hpp"
#include "src/place/metrics.hpp"
#include "src/place/placer.hpp"
#include "src/place/refine.hpp"
#include "src/place/route.hpp"

namespace {

using namespace emi;

// Strict numeric argument parsing: the whole token must be a number in
// range, otherwise the caller prints a diagnostic and exits with the usage
// status. std::stoul would happily accept "12abc" or wrap negatives.
bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_board(const char* s, int& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 4095) return false;
  out = static_cast<int>(v);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: emiplace <command> [args]\n"
               "  info  <design>\n"
               "  place <design> [-o layout] [--compact] [--refine N] [--seed S]\n"
               "  drc   <design> [layout]\n"
               "  route <design> <layout>\n"
               "  svg   <design> <layout> [board] [-o file]\n"
               "  flow  [buck|boost] [--points N] [--budget-ms MS]\n"
               "        [--stage-budget-ms MS] [--checkpoint FILE] [--resume]\n"
               "        [--stop-after STAGE] [-o PREFIX]\n"
               "global: --fault-inject <site>:<rate>:<seed>[,...]\n");
  return 2;
}

// Load a design or exit 1 with the structured parse diagnostic (stage,
// error class and line number) on stderr.
io::LoadedDesign load_or_exit(const std::string& path) {
  core::Result<io::LoadedDesign> r = io::try_load_design_file(path);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

int cmd_info(const std::string& path) {
  const io::LoadedDesign ld = load_or_exit(path);
  const place::Design& d = ld.design;
  std::printf("design: %s\n", path.c_str());
  std::printf("  boards:      %d\n", d.board_count());
  std::printf("  components:  %zu\n", d.components().size());
  std::printf("  nets:        %zu\n", d.nets().size());
  std::printf("  areas:       %zu\n", d.areas().size());
  std::printf("  keepouts:    %zu\n", d.keepouts().size());
  std::printf("  EMD rules:   %zu\n", d.emd_rules().size());
  std::printf("  groups:      %zu\n", d.groups().size());
  std::printf("  clearance:   %.2f mm\n", d.clearance().raw());
  std::size_t preplaced = 0;
  for (const auto& p : ld.layout.placements) preplaced += p.placed ? 1 : 0;
  std::printf("  preplaced:   %zu\n", preplaced);
  return 0;
}

int cmd_place(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string design_path = argv[0];
  std::string out_path;
  bool compact = false;
  std::size_t refine_iters = 0;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--compact")) {
      compact = true;
    } else if (!std::strcmp(argv[i], "--refine") && i + 1 < argc) {
      std::uint64_t v = 0;
      if (!parse_u64(argv[++i], v)) {
        std::fprintf(stderr, "invalid --refine value: %s\n", argv[i]);
        return usage();
      }
      refine_iters = static_cast<std::size_t>(v);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      if (!parse_u64(argv[++i], seed)) {
        std::fprintf(stderr, "invalid --seed value: %s\n", argv[i]);
        return usage();
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage();
    }
  }

  io::LoadedDesign ld = load_or_exit(design_path);
  const place::PlaceStats stats = place::auto_place(ld.design, ld.layout);
  std::fprintf(stderr, "placed %zu, failed %zu in %.1f ms\n", stats.placed,
               stats.failed, stats.elapsed_seconds * 1e3);
  for (const std::string& f : stats.failed_components) {
    std::fprintf(stderr, "  FAILED: %s\n", f.c_str());
  }
  if (compact) {
    const place::CompactionResult c = place::compact_layout(ld.design, ld.layout);
    std::fprintf(stderr, "compacted: area %.0f -> %.0f mm^2\n", c.area_before_mm2,
                 c.area_after_mm2);
  }
  if (refine_iters > 0) {
    place::RefineOptions ropt;
    ropt.iterations = refine_iters;
    ropt.seed = seed;
    const place::RefineResult r = place::refine_layout(ld.design, ld.layout, ropt);
    std::fprintf(stderr, "refined: cost %.1f -> %.1f\n", r.cost_before, r.cost_after);
  }
  const place::DrcReport rep = place::DrcEngine(ld.design).check(ld.layout);
  std::fprintf(stderr, "DRC: %s (%zu violations)\n",
               rep.clean() ? "CLEAN" : "VIOLATIONS", rep.violations.size());

  if (out_path.empty()) {
    io::save_layout(std::cout, ld.design, ld.layout);
  } else {
    const core::Status st = io::write_file_atomic(
        out_path, [&](std::ostream& o) { io::save_layout(o, ld.design, ld.layout); });
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "layout written to %s\n", out_path.c_str());
  }
  return stats.failed == 0 && rep.clean() ? 0 : 1;
}

int cmd_drc(int argc, char** argv) {
  if (argc < 1) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  place::Layout layout = ld.layout;
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    layout = io::load_layout(in, ld.design);
  }
  const place::DrcReport rep = place::DrcEngine(ld.design).check(layout);
  io::write_drc_report(std::cout, rep);
  return rep.clean() ? 0 : 1;
}

int cmd_route(int argc, char** argv) {
  if (argc < 2) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  const place::Layout layout = io::load_layout(in, ld.design);
  const auto routed = place::route_nets(ld.design, layout);
  std::printf("net,length_mm,segments\n");
  for (const auto& rn : routed) {
    std::printf("%s,%.1f,%zu\n", rn.net.c_str(), rn.total_length_mm,
                rn.segments.size());
  }
  std::printf("# total %.1f mm\n", place::total_trace_length(routed));
  return 0;
}

int cmd_svg(int argc, char** argv) {
  if (argc < 2) return usage();
  io::LoadedDesign ld = load_or_exit(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  const place::Layout layout = io::load_layout(in, ld.design);
  io::SvgOptions opt;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (i == 2 && parse_board(argv[i], opt.board)) {
      // positional board index
    } else {
      std::fprintf(stderr, "invalid board index or option: %s\n", argv[i]);
      return usage();
    }
  }
  if (out_path.empty()) {
    io::write_layout_svg(std::cout, ld.design, layout, opt);
  } else {
    const core::Status st = io::write_layout_svg_file(out_path, ld.design, layout, opt);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_flow(int argc, char** argv) {
  std::string topology = "buck";
  flow::FlowOptions fopt;
  fopt.sweep.n_points = 60;  // CLI default: quick sweeps
  std::string out_prefix;
  bool resume = false;
  int i = 0;
  if (argc >= 1 && argv[0][0] != '-') topology = argv[i++];
  if (topology != "buck" && topology != "boost") {
    std::fprintf(stderr, "unknown topology: %s\n", topology.c_str());
    return usage();
  }
  for (; i < argc; ++i) {
    std::uint64_t v = 0;
    if (!std::strcmp(argv[i], "--points") && i + 1 < argc) {
      if (!parse_u64(argv[++i], v) || v < 2 || v > 100000) {
        std::fprintf(stderr, "invalid --points value: %s\n", argv[i]);
        return usage();
      }
      fopt.sweep.n_points = static_cast<std::size_t>(v);
    } else if (!std::strcmp(argv[i], "--budget-ms") && i + 1 < argc) {
      if (!parse_u64(argv[++i], v)) {
        std::fprintf(stderr, "invalid --budget-ms value: %s\n", argv[i]);
        return usage();
      }
      fopt.total_budget_ms = static_cast<std::int64_t>(v);
    } else if (!std::strcmp(argv[i], "--stage-budget-ms") && i + 1 < argc) {
      if (!parse_u64(argv[++i], v)) {
        std::fprintf(stderr, "invalid --stage-budget-ms value: %s\n", argv[i]);
        return usage();
      }
      fopt.stage_budget_ms = static_cast<std::int64_t>(v);
    } else if (!std::strcmp(argv[i], "--checkpoint") && i + 1 < argc) {
      fopt.checkpoint_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume = true;
    } else if (!std::strcmp(argv[i], "--stop-after") && i + 1 < argc) {
      if (!flow::flow_stage_from_name(argv[++i])) {
        std::fprintf(stderr, "unknown --stop-after stage: %s\n", argv[i]);
        return usage();
      }
      fopt.stop_after_stage = argv[i];
    } else if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_prefix = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage();
    }
  }
  if (resume && fopt.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return usage();
  }

  flow::BuckConverter bc =
      topology == "buck" ? flow::make_buck_converter() : flow::make_boost_converter();
  const place::Layout initial = topology == "buck"
                                    ? flow::layout_unfavorable(bc)
                                    : flow::boost_layout_unfavorable(bc);
  const flow::FlowResult res = resume ? flow::resume_design_flow(bc, initial, fopt)
                                      : flow::run_design_flow(bc, initial, fopt);

  std::fprintf(stderr, "flow(%s): %zu pairs ranked, %zu simulated, %zu solves saved\n",
               topology.c_str(), res.ranking.size(), res.simulated_pairs.size(),
               res.field_solves_saved);
  for (const flow::StageDiagnostic& d : res.diagnostics) {
    std::fprintf(stderr, "  [%s] attempts=%d %s: %s\n",
                 d.recovered ? "recovered" : "failed", d.attempts, d.stage.c_str(),
                 d.status.to_string().c_str());
  }
  std::fprintf(stderr, "complete: %s  rules: %zu  peak improvement: %.2f dB\n",
               res.complete ? "yes" : "no", res.rules.size(),
               res.peak_improvement_db);

  if (!out_prefix.empty()) {
    // The improved spectrum/layout only exist for a completed flow; a partial
    // run (expired budget, --stop-after) still gets the initial prediction.
    std::vector<std::pair<std::string, core::Status>> outs;
    outs.emplace_back(out_prefix + "_initial.csv",
                      io::write_spectrum_csv_file(out_prefix + "_initial.csv",
                                                  res.initial_prediction,
                                                  fopt.cispr_class));
    if (res.complete) {
      outs.emplace_back(out_prefix + "_improved.csv",
                        io::write_spectrum_csv_file(out_prefix + "_improved.csv",
                                                    res.improved_prediction,
                                                    fopt.cispr_class));
      outs.emplace_back(out_prefix + "_layout.csv",
                        io::write_layout_table_file(out_prefix + "_layout.csv",
                                                    bc.board, res.improved_layout));
    }
    for (const auto& o : outs) {
      if (!o.second.ok()) {
        std::fprintf(stderr, "%s\n", o.second.to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", o.first.c_str());
    }
  }
  return res.complete ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Global --fault-inject: same spec syntax as EMI_FAULT_INJECT, validated
  // strictly - a malformed spec (any entry of a multi-entry list) is a usage
  // error, not a silently disarmed injector.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--fault-inject")) {
      if (i + 1 >= argc ||
          !core::FaultInjector::instance().configure_from_spec(argv[i + 1])) {
        std::fprintf(stderr, "invalid --fault-inject spec: %s\n",
                     i + 1 < argc ? argv[i + 1] : "(missing)");
        return usage();
      }
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "place") return cmd_place(argc - 2, argv + 2);
    if (cmd == "drc") return cmd_drc(argc - 2, argv + 2);
    if (cmd == "route") return cmd_route(argc - 2, argv + 2);
    if (cmd == "svg") return cmd_svg(argc - 2, argv + 2);
    if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
