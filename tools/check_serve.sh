#!/usr/bin/env bash
# One-shot serving gate: builds the serve-facing targets, then runs the
# `serve` ctest label (queue/admission/backoff/service/server/wire unit
# batteries) followed by the `soak` label (daemon-level fault soak: kill -9
# recovery, overload shed + polite retry, wedge watchdog, poison quarantine,
# graceful drain - with bit-identity checks against an unloaded reference).
#
#   tools/check_serve.sh [build-dir]        default build dir: build
#
# Exits 0 when everything passes, non-zero on any failure. Deliberately NOT
# registered as a ctest: it wraps ctest itself, and the gtest state dirs
# under TempDir() are per-binary, so a nested concurrent run of the same
# batteries would collide. Run it from CI or by hand before touching svc/.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

if [[ ! -d "$build_dir" ]]; then
  echo "check_serve: configuring ${build_dir}"
  cmake -S "$repo_root" -B "$build_dir" >/dev/null
fi

echo "check_serve: building"
cmake --build "$build_dir" -j "$(nproc)" >/dev/null

echo "check_serve: running 'serve' ctest label"
ctest --test-dir "$build_dir" -L serve --output-on-failure

echo "check_serve: running 'soak' ctest label"
ctest --test-dir "$build_dir" -L soak --output-on-failure

echo "check_serve: all green"
