// unit_lint: repo-specific static check that raw double/float declarations
// do not carry unit-suffixed names in public headers. Once a quantity has a
// unit suffix it should be a units::Quantity strong type (src/core/units.hpp)
// or be listed - with a reason - in the conversion allowlist.
//
// Usage:
//   unit_lint <root-dir> <allowlist-file>     scan all .hpp under root
//   unit_lint --selftest <fixture-header>     exit 0 iff the fixture DOES
//                                             produce at least one violation
//                                             (guards the lint itself)
//
// Allowlist format: one entry per line, `path:identifier` (path relative to
// the scanned root, forward slashes); `#` starts a comment. An entry matches
// every declaration of that identifier in that header.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kSuffixes = {
    "_mm", "_m",  "_um",    "_hz",     "_khz", "_mhz", "_farad", "_farads",
    "_f",  "_nf", "_pf",    "_uf",     "_ohm", "_ohms", "_henry", "_henries",
    "_nh", "_uh", "_a",     "_db",     "_dbuv", "_volt", "_volts", "_v",
    "_t",  "_s",  "_sec",   "_rad_s",
};

bool has_unit_suffix(const std::string& ident) {
  return std::any_of(kSuffixes.begin(), kSuffixes.end(), [&](const std::string& suf) {
    return ident.size() > suf.size() &&
           ident.compare(ident.size() - suf.size(), suf.size(), suf) == 0;
  });
}

struct Violation {
  std::string file;  // relative path
  std::size_t line;
  std::string ident;
};

// Strip // and /* */ comments plus string literals so commented-out code and
// doc text never trigger the lint.
std::string strip_comments(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class St { kCode, kLine, kBlock, kString, kChar } st = St::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          st = St::kString;
          out.push_back(' ');
        } else if (c == '\'') {
          st = St::kChar;
          out.push_back(' ');
        } else {
          out.push_back(c);
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
          out.push_back('\n');
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

// A declaration is `double <ident>` or `float <ident>` where <ident> carries
// a unit suffix: catches parameters, struct fields, locals in inline code
// and defaulted members alike.
void scan_file(const fs::path& file, const std::string& rel,
               std::vector<Violation>& out) {
  std::ifstream in(file);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = strip_comments(buf.str());

  static const std::regex decl(R"((?:^|[^\w:])(?:double|float)\s+(\w+))");
  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    for (auto it = std::sregex_iterator(line.begin(), line.end(), decl);
         it != std::sregex_iterator(); ++it) {
      const std::string ident = (*it)[1].str();
      if (has_unit_suffix(ident)) out.push_back({rel, line_no, ident});
    }
    start = end + 1;
    ++line_no;
  }
}

std::set<std::string> load_allowlist(const fs::path& file) {
  std::set<std::string> allow;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // trim
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    allow.insert(line.substr(b, e - b + 1));
  }
  return allow;
}

int scan_tree(const fs::path& root, const fs::path& allowlist_file) {
  const std::set<std::string> allow = load_allowlist(allowlist_file);
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hpp") {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());

  std::vector<Violation> violations;
  std::set<std::string> used;
  for (const fs::path& h : headers) {
    const std::string rel = fs::relative(h, root).generic_string();
    std::vector<Violation> file_violations;
    scan_file(h, rel, file_violations);
    for (const Violation& v : file_violations) {
      const std::string key = v.file + ":" + v.ident;
      if (allow.count(key) != 0) {
        used.insert(key);
      } else {
        violations.push_back(v);
      }
    }
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr,
                 "%s:%zu: raw double '%s' carries a unit suffix; use a "
                 "units::Quantity type or add '%s:%s' to the allowlist\n",
                 v.file.c_str(), v.line, v.ident.c_str(), v.file.c_str(),
                 v.ident.c_str());
  }
  // Stale allowlist entries rot silently; flag them so conversions retire
  // their exemptions.
  int stale = 0;
  for (const std::string& key : load_allowlist(allowlist_file)) {
    if (used.count(key) == 0) {
      std::fprintf(stderr, "allowlist entry '%s' matches nothing (stale)\n",
                   key.c_str());
      ++stale;
    }
  }
  if (!violations.empty() || stale != 0) return 1;
  std::printf("unit_lint: %zu headers clean (%zu allowlisted declarations)\n",
              headers.size(), used.size());
  return 0;
}

int selftest(const fs::path& fixture) {
  std::vector<Violation> violations;
  scan_file(fixture, fixture.generic_string(), violations);
  if (violations.empty()) {
    std::fprintf(stderr,
                 "unit_lint selftest FAILED: fixture %s produced no "
                 "violations - the lint is blind\n",
                 fixture.generic_string().c_str());
    return 1;
  }
  std::printf("unit_lint selftest ok: fixture produced %zu violation(s)\n",
              violations.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--selftest") {
    return selftest(argv[2]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: unit_lint <root-dir> <allowlist-file>\n"
                 "       unit_lint --selftest <fixture-header>\n");
    return 2;
  }
  return scan_tree(argv[1], argv[2]);
}
