// unit_lint: repo-specific static check that raw numeric declarations do not
// carry unit-suffixed names in public headers. Once a quantity has a unit
// suffix it should be a units::Quantity strong type (src/core/units.hpp) or
// be listed - with a reason - in the conversion allowlist.
//
// Two rules:
//   1. `double`/`float` declarations whose identifier ends in a physical
//      unit suffix (_mm, _hz, _db, ...) - the original PR 3 rule.
//   2. integral declarations whose identifier ends in a time suffix
//      (_ms, _us, _ns) - covers the svc/flow budget and protocol fields,
//      which mirror wire/config formats and stay integral on purpose (each
//      carries a reasoned allowlist entry).
//
// Usage:
//   unit_lint <root-dir> <allowlist-file>     scan all .hpp under root
//   unit_lint --selftest <fixture-header>     exit 0 iff the fixture DOES
//                                             produce at least one violation
//                                             (guards the lint itself)
//
// Allowlist: `path:identifier` entries, shared format with det_lint
// (tools/lint_common.hpp); stale entries fail.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <regex>
#include <string>
#include <vector>

#include "lint_common.hpp"

namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kSuffixes = {
    "_mm", "_m",  "_um",    "_hz",     "_khz", "_mhz", "_farad", "_farads",
    "_f",  "_nf", "_pf",    "_uf",     "_ohm", "_ohms", "_henry", "_henries",
    "_nh", "_uh", "_a",     "_db",     "_dbuv", "_volt", "_volts", "_v",
    "_t",  "_s",  "_sec",   "_rad_s",  "_ms",  "_us",   "_ns",
};

bool has_unit_suffix(const std::string& ident) {
  return std::any_of(kSuffixes.begin(), kSuffixes.end(), [&](const std::string& suf) {
    return ident.size() > suf.size() &&
           ident.compare(ident.size() - suf.size(), suf.size(), suf) == 0;
  });
}

// Rule 1: `double <ident>` or `float <ident>` with any unit suffix: catches
// parameters, struct fields, locals in inline code and defaulted members.
// Rule 2: integral `<ident>_ms/_us/_ns`: raw time quantities in APIs.
void scan_file(const fs::path& file, const std::string& rel,
               std::vector<lint::Violation>& out) {
  const std::string text = lint::strip_comments(lint::read_file(file));

  static const std::regex fp_decl(R"((?:^|[^\w:])(?:double|float)\s+(\w+))");
  static const std::regex int_time_decl(
      R"((?:^|[^\w:])(?:std::)?(?:u?int(?:16|32|64)_t|int|long|unsigned|size_t)\s+(\w+_(?:ms|us|ns))\b)");
  std::size_t line_no = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    for (auto it = std::sregex_iterator(line.begin(), line.end(), fp_decl);
         it != std::sregex_iterator(); ++it) {
      const std::string ident = (*it)[1].str();
      if (has_unit_suffix(ident)) {
        out.push_back({rel, line_no, ident, "raw double carries a unit suffix"});
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), int_time_decl);
         it != std::sregex_iterator(); ++it) {
      out.push_back(
          {rel, line_no, (*it)[1].str(), "raw integral carries a time suffix"});
    }
    start = end + 1;
    ++line_no;
  }
}

int scan_tree(const fs::path& root, const fs::path& allowlist_file) {
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hpp") {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());

  std::vector<lint::Violation> violations;
  for (const fs::path& h : headers) {
    scan_file(h, fs::relative(h, root).generic_string(), violations);
  }
  return lint::finish_scan(
      violations, allowlist_file, "unit_lint",
      "%s:%zu: declaration '%s' (%s); use a units::Quantity type or add "
      "'%s:%s' to the allowlist\n",
      headers.size());
}

int selftest(const fs::path& fixture) {
  std::vector<lint::Violation> violations;
  scan_file(fixture, fixture.generic_string(), violations);
  if (violations.empty()) {
    std::fprintf(stderr,
                 "unit_lint selftest FAILED: fixture %s produced no "
                 "violations - the lint is blind\n",
                 fixture.generic_string().c_str());
    return 1;
  }
  std::printf("unit_lint selftest ok: fixture produced %zu violation(s)\n",
              violations.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--selftest") {
    return selftest(argv[2]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: unit_lint <root-dir> <allowlist-file>\n"
                 "       unit_lint --selftest <fixture-header>\n");
    return 2;
  }
  return scan_tree(argv[1], argv[2]);
}
