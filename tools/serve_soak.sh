#!/usr/bin/env bash
# Fault-injection soak at the daemon level: every injection site the flow
# owns (pool/cache/lu/io/ckpt) fires while a 2-executor daemon chews through
# a batch of jobs, then the daemon is SIGKILLed with work still in flight.
# Invariant under test: no job is ever lost and none is left in a
# non-terminal state once the restarted daemon drains.
#
# Usage: serve_soak.sh <emiplace-binary> <work-dir>
set -u

CLI=$1
WORK=$2
SOCK="/tmp/emiplace_soak_$$.sock"
JOBS=6

rm -rf "$WORK"
mkdir -p "$WORK"
trap 'kill -9 $DAEMON 2>/dev/null; rm -f "$SOCK"' EXIT

fail() { echo "serve_soak: FAIL: $*" >&2; exit 1; }

start_daemon() { # args: state-dir; honors EMI_FAULT_INJECT from the caller
  "$CLI" serve --socket "$SOCK" --state-dir "$1" --executors 2 \
    2>"$WORK/daemon.log" &
  DAEMON=$!
  for _ in $(seq 1 200); do
    if "$CLI" stats --socket "$SOCK" >/dev/null 2>&1; then return 0; fi
    kill -0 "$DAEMON" 2>/dev/null || fail "daemon died on start: $(cat "$WORK/daemon.log")"
    sleep 0.05
  done
  fail "daemon never started listening"
}

# Phase 1: all sites armed. Jobs may fail - that is the taxonomy working -
# but every one must reach a terminal state and stay queryable.
EMI_FAULT_INJECT="pool:0.05:7,cache:0.05:9,lu:0.05:11,io:0.02:13,ckpt:0.1:17" \
  start_daemon "$WORK/state"
for i in $(seq 1 "$JOBS"); do
  "$CLI" submit --socket "$SOCK" buck --points 30 --client "soak-$((i % 3))" \
    >/dev/null || fail "submit $i"
done
for i in $(seq 1 "$JOBS"); do
  REPLY=$("$CLI" result --socket "$SOCK" --job "$i") || fail "result $i: $REPLY"
  grep -Eq "state=(done|failed|cancelled)" <<<"$REPLY" \
    || fail "job $i non-terminal under faults: $REPLY"
done

# Phase 2: SIGKILL with fresh work in flight, restart with faults disarmed.
for i in $(seq 1 "$JOBS"); do
  "$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "resubmit $i"
done
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null

start_daemon "$WORK/state"
TOTAL=$((JOBS * 2))
for i in $(seq 1 "$TOTAL"); do
  REPLY=$("$CLI" result --socket "$SOCK" --job "$i") || fail "job $i lost: $REPLY"
  grep -Eq "state=(done|failed|cancelled)" <<<"$REPLY" \
    || fail "job $i left non-terminal after restart: $REPLY"
done
STATS=$("$CLI" stats --socket "$SOCK") || fail "final stats"
grep -q " queued=0 running=0 " <<<"$STATS" \
  || fail "daemon did not drain: $STATS"

"$CLI" shutdown --socket "$SOCK" >/dev/null || fail "shutdown"
wait "$DAEMON" || fail "daemon exited nonzero after shutdown"

echo "serve_soak: OK ($TOTAL jobs, all terminal, none lost)"
