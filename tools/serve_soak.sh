#!/usr/bin/env bash
# Fault-injection + overload soak at the daemon level. Six phases:
#
#   1. every flow-owned injection site (pool/cache/lu/io/ckpt) armed while a
#      2-executor daemon chews through a batch - jobs may fail (taxonomy
#      working) but all must land terminal and stay queryable;
#   2. SIGKILL with work in flight, restart with faults disarmed - nothing
#      lost, nothing left non-terminal;
#   3. overload: capacity-1 queue under a burst - sheds carry a
#      retry_after_ms hint and `submit --retry` rides the hint to success;
#   4. wedge: an injected hang is caught by the lease watchdog, requeued,
#      and the retry lands on the bit-identical unloaded fingerprint;
#   5. poison: a job that crash-sims on every attempt survives two SIGKILL
#      cycles, burns max_attempts, and is quarantined - terminal, queryable,
#      never replayed - while fresh submits keep working;
#   6. graceful drain: SHUTDOWN DRAIN finishes in-flight work, parks the
#      backlog durably, exits the serve loop on its own; a restart completes
#      the backlog with the same reference fingerprint - zero jobs lost.
#
# Usage: serve_soak.sh <emiplace-binary> <work-dir>
set -u

CLI=$1
WORK=$2
SOCK="/tmp/emiplace_soak_$$.sock"
JOBS=6

rm -rf "$WORK"
mkdir -p "$WORK"
DAEMON=0
trap 'kill -9 $DAEMON 2>/dev/null; rm -f "$SOCK"' EXIT

fail() { echo "serve_soak: FAIL: $*" >&2; exit 1; }

start_daemon() { # args: state-dir [extra serve flags...]; honors EMI_FAULT_INJECT
  local state=$1
  shift
  "$CLI" serve --socket "$SOCK" --state-dir "$state" "$@" \
    2>>"$WORK/daemon.log" &
  DAEMON=$!
  for _ in $(seq 1 200); do
    if "$CLI" stats --socket "$SOCK" >/dev/null 2>&1; then return 0; fi
    kill -0 "$DAEMON" 2>/dev/null || fail "daemon died on start: $(tail -5 "$WORK/daemon.log")"
    sleep 0.05
  done
  fail "daemon never started listening"
}

stop_daemon() {
  "$CLI" shutdown --socket "$SOCK" >/dev/null || fail "shutdown"
  wait "$DAEMON" || fail "daemon exited nonzero after shutdown"
}

# Poll STATUS for a job until its state matches the pattern (or time out).
wait_state() { # args: job-id state-regex
  local reply=""
  for _ in $(seq 1 400); do
    reply=$("$CLI" status --socket "$SOCK" --job "$1" 2>/dev/null) || true
    grep -Eq "state=($2)" <<<"$reply" && return 0
    sleep 0.05
  done
  fail "job $1 never reached state=$2: $reply"
}

# --- Phase 1: all sites armed ----------------------------------------------
EMI_FAULT_INJECT="pool:0.05:7,cache:0.05:9,lu:0.05:11,io:0.02:13,ckpt:0.1:17" \
  start_daemon "$WORK/state" --executors 2
for i in $(seq 1 "$JOBS"); do
  "$CLI" submit --socket "$SOCK" buck --points 30 --client "soak-$((i % 3))" \
    >/dev/null || fail "submit $i"
done
for i in $(seq 1 "$JOBS"); do
  REPLY=$("$CLI" result --socket "$SOCK" --job "$i") || fail "result $i: $REPLY"
  grep -Eq "state=(done|failed|cancelled)" <<<"$REPLY" \
    || fail "job $i non-terminal under faults: $REPLY"
done

# --- Phase 2: SIGKILL mid-flight, clean restart ----------------------------
for i in $(seq 1 "$JOBS"); do
  "$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "resubmit $i"
done
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null

start_daemon "$WORK/state" --executors 2
TOTAL=$((JOBS * 2))
for i in $(seq 1 "$TOTAL"); do
  REPLY=$("$CLI" result --socket "$SOCK" --job "$i") || fail "job $i lost: $REPLY"
  grep -Eq "state=(done|failed|cancelled)" <<<"$REPLY" \
    || fail "job $i left non-terminal after restart: $REPLY"
done
STATS=$("$CLI" stats --socket "$SOCK") || fail "final stats"
grep -q " queued=0 running=0 " <<<"$STATS" \
  || fail "daemon did not drain: $STATS"
stop_daemon

# --- Phase 3: overload shed + polite retry ---------------------------------
# Capacity-1 queue, one executor: a slow occupant plus one queued job means
# every further submit must shed with a machine-readable retry_after_ms
# hint, and `submit --retry` must ride hint+backoff to eventual admission.
start_daemon "$WORK/state_shed" --executors 1 --queue-capacity 1
"$CLI" submit --socket "$SOCK" buck --points 3000 >/dev/null || fail "occupant"
wait_state 1 running
"$CLI" submit --socket "$SOCK" buck --points 3000 >/dev/null || fail "queue filler"
SHEDS=0
for i in $(seq 1 4); do
  REPLY=$("$CLI" submit --socket "$SOCK" buck --points 30 2>&1) && continue
  grep -q "code=resource_exhausted" <<<"$REPLY" || fail "shed wrong code: $REPLY"
  grep -q "retry_after_ms=" <<<"$REPLY" || fail "shed without hint: $REPLY"
  SHEDS=$((SHEDS + 1))
done
[ "$SHEDS" -ge 1 ] || fail "burst never shed (queue too fast?)"
HEALTH=$("$CLI" health --socket "$SOCK") || fail "health"
grep -Eq " shed=[1-9]" <<<"$HEALTH" || fail "health lost the sheds: $HEALTH"
"$CLI" submit --socket "$SOCK" buck --points 30 --retry 40 --retry-base-ms 50 \
  >/dev/null 2>>"$WORK/retry.log" || fail "submit --retry never admitted"
stop_daemon

# --- Phase 4: wedge -> watchdog -> requeue -> bit-identical ----------------
# Unloaded reference first; wedge:0.5:3 then hangs job 1 attempt 1 (the
# fault key re-rolls per attempt), the lease watchdog stalls and requeues
# it, and the clean retry must reproduce the reference bits. The lease is
# sized so only the wedge (an infinite hang) trips it even when ctest runs
# the soak next to other tests on a small box.
start_daemon "$WORK/state_ref" --executors 1
"$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "ref submit"
REF=$("$CLI" result --socket "$SOCK" --job 1) || fail "ref result"
REF_FP=$(grep -o "fingerprint=[0-9a-fx]*" <<<"$REF") || fail "ref fingerprint"
stop_daemon

EMI_FAULT_INJECT="wedge:0.5:3" \
  start_daemon "$WORK/state_wedge" --executors 1 --lease-ms 300 --max-attempts 3
"$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "wedge submit"
REPLY=$("$CLI" result --socket "$SOCK" --job 1) || fail "wedge result"
grep -q "state=done" <<<"$REPLY" || fail "wedged job not recovered: $REPLY"
grep -q "$REF_FP" <<<"$REPLY" \
  || fail "wedge retry diverged from reference: $REPLY vs $REF_FP"
HEALTH=$("$CLI" health --socket "$SOCK") || fail "wedge health"
grep -Eq " stall_events=[1-9]" <<<"$HEALTH" \
  || fail "watchdog never fired: $HEALTH"
grep -q " stalled=0 " <<<"$HEALTH" || fail "job left stuck: $HEALTH"
stop_daemon

# --- Phase 5: poison-job quarantine across SIGKILL cycles ------------------
# poison + stop_after crash-sims at the same stage on every attempt; the
# attempt count is durable *before* the run, so two kill -9 cycles burn
# max_attempts=2 and recovery quarantines the job instead of replaying it.
start_daemon "$WORK/state_poison" --executors 1 --max-attempts 2
"$CLI" submit --socket "$SOCK" buck --points 30 --poison --stop-after sensitivity \
  >/dev/null || fail "poison submit"
wait_state 1 running  # attempt 1 crash-simmed: disk says running forever
sleep 0.3
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null

start_daemon "$WORK/state_poison" --executors 1 --max-attempts 2
wait_state 1 running  # recovery requeued; attempt 2 crash-sims the same way
sleep 0.3
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null

start_daemon "$WORK/state_poison" --executors 1 --max-attempts 2
REPLY=$("$CLI" result --socket "$SOCK" --job 1) || fail "poison result"
grep -q "state=quarantined" <<<"$REPLY" || fail "poison not quarantined: $REPLY"
grep -q "quarantined after 2 attempts" <<<"$REPLY" \
  || fail "quarantine detail missing: $REPLY"
HEALTH=$("$CLI" health --socket "$SOCK") || fail "poison health"
grep -q " quarantined=1" <<<"$HEALTH" || fail "health lost quarantine: $HEALTH"
# The service still takes and finishes fresh work next to the quarantine.
"$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "post-poison submit"
REPLY=$("$CLI" result --socket "$SOCK" --job 2) || fail "post-poison result"
grep -q "state=done" <<<"$REPLY" || fail "post-poison job failed: $REPLY"
stop_daemon

# --- Phase 6: graceful drain, zero lost jobs -------------------------------
# SHUTDOWN DRAIN: in-flight jobs finish, the backlog stays durable, and the
# serve loop exits on its own. The restarted daemon completes the backlog
# and every job matches the phase-4 reference bits.
start_daemon "$WORK/state_drain" --executors 2
for i in $(seq 1 "$JOBS"); do
  "$CLI" submit --socket "$SOCK" buck --points 30 >/dev/null || fail "drain submit $i"
done
REPLY=$("$CLI" shutdown --socket "$SOCK" --drain) || fail "shutdown --drain"
grep -q "OK draining" <<<"$REPLY" || fail "drain not acknowledged: $REPLY"
wait "$DAEMON" || fail "daemon exited nonzero after drain"

start_daemon "$WORK/state_drain" --executors 2
for i in $(seq 1 "$JOBS"); do
  REPLY=$("$CLI" result --socket "$SOCK" --job "$i") || fail "drained job $i lost"
  grep -q "state=done" <<<"$REPLY" || fail "drained job $i not done: $REPLY"
  grep -q "$REF_FP" <<<"$REPLY" \
    || fail "drained job $i diverged from reference: $REPLY vs $REF_FP"
done
STATS=$("$CLI" stats --socket "$SOCK") || fail "drain stats"
grep -q " queued=0 running=0 " <<<"$STATS" \
  || fail "backlog not completed after drain restart: $STATS"
stop_daemon

echo "serve_soak: OK (faults, kill -9, shed+retry, wedge, quarantine, drain)"
