#!/usr/bin/env bash
# One-shot sweep-acceleration gate: builds the default tree and runs the
# `sweep` ctest label (adaptive-refinement fuzz, coupling-model battery,
# rational-surrogate battery, flow-level 10x/1dB acceptance, digest and
# resume coupling, thread invariance), then the accelerated benchmarks so
# the solve-count counters land in the console log.
#
#   tools/check_sweep.sh [build-dir]           default build dir: build
#
# Exits 0 when everything passes, non-zero on any failure. The benchmark
# half is skipped (with a notice) when the bench binary is absent - bench
# targets are part of the default build, so that only happens on a
# tests-only configure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

if [[ ! -d "$build_dir" ]]; then
  echo "check_sweep: configuring ${build_dir}"
  cmake -S "$repo_root" -B "$build_dir" >/dev/null
fi

echo "check_sweep: building"
cmake --build "$build_dir" -j "$(nproc)"

echo "check_sweep: running 'sweep' ctest label"
ctest --test-dir "$build_dir" -L sweep --output-on-failure

bench="${build_dir}/bench/bench_perf_parallel"
if [[ -x "$bench" ]]; then
  echo "check_sweep: solve-count economics (BM_AdaptiveSweep / BM_SensitivityRankingAdaptive)"
  "$bench" --benchmark_filter='Adaptive' --benchmark_min_time=0.05
else
  echo "check_sweep: SKIP benchmarks (${bench} not built)"
fi

echo "check_sweep: all green"
