// Deliberately unconverted header: unit_lint's selftest asserts the lint
// flags every declaration below. Never include this file in a build.
#pragma once

namespace emi::lint_fixture {

double unconverted_distance(double foo_mm, double bar_hz);

struct BadParams {
  double cap_farad = 1e-9;
  double shunt_ohm = 50.0;
  float level_db = 0.0F;
  long retry_delay_ms = 0;  // integral time-suffix rule
  unsigned poll_us = 0;
};

}  // namespace emi::lint_fixture
