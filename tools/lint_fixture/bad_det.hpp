// Deliberately nondeterministic fixture for the det_lint selftest. Every
// hazard class the lint knows must appear here, so a lint change that stops
// seeing one of them fails the selftest instead of going quietly blind.
// Never include this header anywhere.
#pragma once

#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace bad_det {

inline double jitter() {
  std::srand(static_cast<unsigned>(time(nullptr)));       // srand + time
  return static_cast<double>(std::rand()) / RAND_MAX;     // rand
}

inline unsigned hw_seed() {
  std::random_device rd;                                  // random_device
  return rd();
}

inline long stamp() {
  using clock = std::chrono::system_clock;                // system_clock
  return clock::now().time_since_epoch().count();
}

inline double sum_in_hash_order() {
  std::unordered_map<int, double> weights;
  double acc = 0.0;
  for (const auto& [k, w] : weights) acc += w;            // unordered iteration
  return acc;
}

struct ByAddress {
  // pointer-value ordering: varies under ASLR
  std::size_t operator()(const int* p) const {
    return std::hash<const int*>{}(p) ^
           reinterpret_cast<std::uintptr_t>(p);
  }
};

}  // namespace bad_det
