#!/usr/bin/env bash
# Daemon-level crash safety: `emiplace serve` is SIGKILLed mid-job and must,
# on restart over the same state dir, resume or re-queue every in-flight job
# and land on results bit-identical to an uninterrupted run (checked via the
# recorded result fingerprints).
#
# Usage: serve_smoke.sh <emiplace-binary> <work-dir>
set -u

CLI=$1
WORK=$2
SOCK="/tmp/emiplace_smoke_$$.sock"

rm -rf "$WORK"
mkdir -p "$WORK"
trap 'kill -9 $DAEMON 2>/dev/null; rm -f "$SOCK"' EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

start_daemon() { # args: state-dir [extra serve flags...]
  local dir=$1; shift
  "$CLI" serve --socket "$SOCK" --state-dir "$dir" "$@" 2>"$WORK/daemon.log" &
  DAEMON=$!
  for _ in $(seq 1 200); do
    if "$CLI" stats --socket "$SOCK" >/dev/null 2>&1; then return 0; fi
    kill -0 "$DAEMON" 2>/dev/null || fail "daemon died on start: $(cat "$WORK/daemon.log")"
    sleep 0.05
  done
  fail "daemon never started listening"
}

fingerprint_of() { # arg: one OK reply line; prints the fingerprint field
  sed -n 's/.*fingerprint=\([0-9a-f]*\).*/\1/p' <<<"$1"
}

# --- reference: an uninterrupted run's fingerprint --------------------------
start_daemon "$WORK/ref"
REF_REPLY=$("$CLI" submit --socket "$SOCK" buck --points 40) \
  || fail "reference submit: $REF_REPLY"
REF_REPLY=$("$CLI" result --socket "$SOCK" --job 1) || fail "reference result: $REF_REPLY"
grep -q "state=done" <<<"$REF_REPLY" || fail "reference job not done: $REF_REPLY"
REF_FP=$(fingerprint_of "$REF_REPLY")
[ -n "$REF_FP" ] || fail "no fingerprint in: $REF_REPLY"
"$CLI" shutdown --socket "$SOCK" >/dev/null || fail "reference shutdown"
wait "$DAEMON" || fail "reference daemon exited nonzero"

# --- SIGKILL mid-job --------------------------------------------------------
# Job 1 halts via the deterministic crash-sim hook right after its placement
# checkpoint, leaving disk exactly as a SIGKILL mid-job would; job 2 proves a
# queued job behind it survives too. Then the whole daemon is SIGKILLed.
start_daemon "$WORK/kill"
"$CLI" submit --socket "$SOCK" buck --points 40 --stop-after placement >/dev/null \
  || fail "crash-sim submit"
"$CLI" submit --socket "$SOCK" buck --points 40 >/dev/null || fail "second submit"
# The single executor runs FIFO: once job 2 is terminal, job 1 has halted.
"$CLI" result --socket "$SOCK" --job 2 >/dev/null || fail "second job result"
STATUS1=$("$CLI" status --socket "$SOCK" --job 1) || fail "status 1: $STATUS1"
grep -q "state=running" <<<"$STATUS1" || fail "job 1 should be mid-job: $STATUS1"

kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null
# The stale socket file a SIGKILL leaves behind must not block a restart.
[ -S "$SOCK" ] || fail "expected a stale socket file after SIGKILL"

start_daemon "$WORK/kill"
STATS=$("$CLI" stats --socket "$SOCK") || fail "stats after restart: $STATS"
grep -q "recovered=2" <<<"$STATS" || fail "expected recovered=2 in: $STATS"

REPLY1=$("$CLI" result --socket "$SOCK" --job 1) || fail "resumed result: $REPLY1"
grep -q "state=done complete=1" <<<"$REPLY1" || fail "job 1 not done: $REPLY1"
[ "$(fingerprint_of "$REPLY1")" = "$REF_FP" ] \
  || fail "resumed fingerprint differs from uninterrupted run: $REPLY1 vs $REF_FP"

REPLY2=$("$CLI" status --socket "$SOCK" --job 2) || fail "status 2: $REPLY2"
grep -q "state=done" <<<"$REPLY2" || fail "job 2 lost its terminal state: $REPLY2"
[ "$(fingerprint_of "$REPLY2")" = "$REF_FP" ] \
  || fail "job 2 fingerprint differs across daemons: $REPLY2 vs $REF_FP"

# Identical spec submitted to the restarted daemon: still the same bits.
"$CLI" submit --socket "$SOCK" buck --points 40 >/dev/null || fail "post-restart submit"
REPLY3=$("$CLI" result --socket "$SOCK" --job 3) || fail "post-restart result"
[ "$(fingerprint_of "$REPLY3")" = "$REF_FP" ] \
  || fail "post-restart fingerprint differs: $REPLY3 vs $REF_FP"

"$CLI" shutdown --socket "$SOCK" >/dev/null || fail "final shutdown"
wait "$DAEMON" || fail "daemon exited nonzero after shutdown"

echo "serve_smoke: OK (fingerprint $REF_FP stable across SIGKILL + restart)"
